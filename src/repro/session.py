"""A stateful session: versioned database, auto-dispatch, answer memo.

The module-level functions (:func:`repro.answer_query` and friends) are
one-shot: every call re-adorns, re-rewrites, and re-evaluates from
scratch, and the caller has to know which methods tolerate negation.
:class:`Session` is the surface shaped for repeated traffic:

* it owns a :class:`~repro.datalog.database.Database` whose monotone
  ``version`` counter is bumped by every mutation, and supports
  incremental fact assertion *and retraction* between queries;
* :meth:`Session.query` returns a :class:`QueryResult` (rows, the
  method actually run, work counters, plan-cache and memo counters, an
  ``explain()`` hook) and accepts ``method="auto"``: magic-family
  rewriting through the shared plan cache -- for positive *and*
  stratified programs (the conservative negation extension) -- falling
  back to compiled stratified semi-naive only when the adornment
  machinery genuinely rejects the program, with QSQ selectable
  explicitly;
* answers are memoized across evaluations, keyed by
  ``(program, database version, query signature, options)``: a repeated
  identical query on an unchanged database is a dictionary hit, and a
  mutation drops exactly the entries whose relation footprint it
  touches (out-of-band mutations still flush everything);
* adorned and rewritten programs are cached per query signature, so a
  re-query after a mutation pays evaluation but not rewriting, and the
  compiled join/subquery plans come from the shared
  :class:`~repro.datalog.planner.PlanCache`.

Quickstart::

    import repro

    session = repro.Session('''
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        par(john, mary). par(mary, sue).
    ''')
    result = session.query("anc(john, X)?")      # method="auto"
    assert ("sue",) in result.values()
    again = session.query("anc(john, X)?")       # memo hit: O(1)
    assert again.from_memo

    session.retract("par(mary, sue)")            # bumps the version,
    third = session.query("anc(john, X)?")       # drops the memo
    assert ("sue",) not in third.values()
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from .core.adornment import AdornedProgram, adorn_program
from .core.limits import (
    BudgetExceeded,
    CancellationToken,
    EvaluationBudget,
)
from .core.pipeline import (
    REWRITE_METHODS,
    QueryAnswer,
    bottom_up_answer,
    rewrite,
    unwrap_values,
)
from .core.provenance import RewrittenProgram
from .core.sips import SipBuilder, build_full_sip
from .datalog.analysis import reachable_predicates
from .datalog.ast import Literal, Program, Query
from .datalog.database import Database, FactTuple, Relation
from .datalog.derivation import DerivationNode
from .datalog.engine import EvaluationStats, evaluate
from .datalog.errors import (
    AdornmentError,
    ConnectivityError,
    ReproError,
    RewriteError,
    SipValidationError,
    UnsupportedProgramError,
)
from .datalog.ivm import MaintenanceResult, MaterializedProgram
from .datalog.parser import parse_literal, parse_program, parse_query
from .datalog.planner import PlanCache, shared_plan_cache
from .datalog.terms import Term, Variable
from .datalog.topdown import QSQResult, qsq_evaluate
from .datalog.unify import match_sequences

__all__ = [
    "Session",
    "QueryResult",
    "MaterializedView",
    "SESSION_METHODS",
    "BASELINE_METHODS",
]

#: evaluation baselines answer_query/Session accept besides the rewrites
BASELINE_METHODS = ("naive", "seminaive", "qsq")

#: everything Session.query accepts for ``method``: the rewrites, the
#: baselines, plus "materialized" (answer from a covering maintained
#: view, never a fresh evaluation)
SESSION_METHODS = (
    ("auto",) + REWRITE_METHODS + BASELINE_METHODS + ("materialized",)
)

#: what ``method="auto"`` tries first -- on positive AND stratified
#: programs (the conservative magic extension handles negation)
_AUTO_PRIMARY = "supplementary_magic"

#: what it falls back to (compiled bottom-up, stratum by stratum)
_AUTO_FALLBACK = "seminaive"

#: errors that route auto-dispatch to the bottom-up fallback AND cache
#: the decision: the adornment machinery declining the *program* (not
#: evaluation failures -- those propagate, the fallback would hit them
#: too).  RewriteError is handled separately: it can be option-level
#: (e.g. ``semijoin=True`` with a magic method), so it falls back for
#: the call at hand but never poisons the cached decision.
_AUTO_PROGRAM_REJECTIONS = (
    UnsupportedProgramError,
    AdornmentError,
    ConnectivityError,
    SipValidationError,
)


@dataclass
class QueryResult:
    """One answered query, with provenance of *how* it was answered.

    ``rows`` are bindings for the query's free variables (tuples of
    ground :class:`~repro.datalog.terms.Term`); ``method`` is the
    strategy actually executed (never ``"auto"``), ``requested_method``
    what the caller asked for.  ``from_memo`` marks answers served from
    the session's cross-evaluation memo; ``db_version`` is the database
    version the answer is valid for.  ``memo_hits``/``memo_misses`` are
    the session's cumulative counters at the time the result was
    produced.  ``stats`` (and with it ``plan_cache_hits``/
    ``plan_cache_misses``) describe the evaluation that *produced* the
    rows: a memo hit carries the memoized cold run's counters, not
    fresh work -- check ``from_memo`` to tell the two apart.  Memo hits
    also drop the heavyweight evaluation artifacts
    (``answer.evaluation``, the raw QSQ answer sets); only the cold
    result exposes those, and memo-served ``rows`` are an immutable
    frozenset snapshot (the memo never aliases a caller-mutable set).

    ``degraded`` marks answers produced by the graceful-degradation
    path: a rewrite method tripped its budget and the compiled
    semi-naive fallback answered under the remaining budget (degraded
    results are exact -- the fallback ran to fixpoint -- but they are
    never memoized, since the method that produced them is not the one
    dispatch would normally pick).  ``budget_spent`` is the governing
    meter's final accounting (elapsed/facts/tuples/stratum/round) when
    the query ran under a budget, else None.
    """

    rows: Set[FactTuple]
    method: str
    requested_method: str
    query: Query
    from_memo: bool = False
    db_version: int = 0
    elapsed: float = 0.0
    stats: Optional[EvaluationStats] = None
    answer: Optional[QueryAnswer] = None
    memo_hits: int = 0
    memo_misses: int = 0
    degraded: bool = False
    budget_spent: Optional[Dict[str, object]] = None
    #: True when the rows came from an incrementally maintained
    #: materialized view rather than a fresh evaluation or the memo
    maintained: bool = False
    #: seconds the serving maintenance pass took (0.0 when the view was
    #: already fresh, or when ``maintained`` is False)
    maintenance_elapsed: float = 0.0
    _session: Optional["Session"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def plan_cache_hits(self) -> int:
        return self.stats.plan_cache_hits if self.stats is not None else 0

    @property
    def plan_cache_misses(self) -> int:
        return self.stats.plan_cache_misses if self.stats is not None else 0

    # -- legacy QueryAnswer attribute names -----------------------------
    # answer_query() used to return the evaluation-level QueryAnswer;
    # now that QueryResult is the single answer type everywhere, the old
    # attribute spellings stay available so callers never branch on
    # which layer produced the result.
    @property
    def answers(self) -> Set[FactTuple]:
        return self.rows

    @property
    def strategy(self) -> str:
        return self.method

    @property
    def rewritten(self):
        return self.answer.rewritten if self.answer is not None else None

    @property
    def evaluation(self):
        return self.answer.evaluation if self.answer is not None else None

    @property
    def qsq(self):
        return self.answer.qsq if self.answer is not None else None

    def values(self) -> Set[Tuple[object, ...]]:
        """Rows with plain Python values in place of Constants."""
        return unwrap_values(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __contains__(self, row) -> bool:
        return tuple(row) in self.rows

    def explain(self, limit: Optional[int] = None) -> List[DerivationNode]:
        """Derivation trees for (up to ``limit`` of) the answers.

        Re-evaluates the program bottom-up against the session's
        *current* database (the memo stores answers, not proofs), so the
        trees reflect the present facts; on a database mutated since
        this result was produced the set of explained answers may
        differ.  Each returned :class:`DerivationNode` renders with
        ``.render()``.
        """
        if self._session is None:
            raise ReproError(
                "this QueryResult is detached from its Session; "
                "explain() needs the session's program and database"
            )
        return self._session.explain(self.query, limit=limit)


def _mentioned_relations(program: Program, extra=()) -> frozenset:
    """Every relation key an evaluation of ``program`` can touch."""
    return frozenset(program.predicates()) | frozenset(extra)


def _select_rows(database: Database, query_literal: Literal):
    """Selection/projection of a query against materialized relations:
    the bindings of the query's free positions (same shape the
    evaluation paths produce via ``answer_tuples``)."""
    free_positions = [
        i
        for i, arg in enumerate(query_literal.args)
        if not arg.is_ground()
    ]
    answers: Set[FactTuple] = set()
    for row in database.tuples(query_literal.pred_key):
        if match_sequences(query_literal.args, row) is None:
            continue
        answers.add(tuple(row[i] for i in free_positions))
    return answers


class MaterializedView:
    """A handle on incrementally maintained derived relations.

    Obtained from :meth:`Session.materialize`; all views of one session
    share a single :class:`~repro.datalog.ivm.MaterializedProgram`
    (the program is evaluated once, then maintained by deltas), so a
    view is cheap -- it records *which* predicates (or which query) it
    serves and answers from the shared maintained state.

    * ``view.rows`` -- a :class:`QueryResult` (``maintained=True``) for
      the view's query, maintaining first when mutations are pending;
    * ``view.version`` -- the database version the materialized state
      is synchronized to;
    * ``view.stale`` -- True when the state needs work before serving
      (pending mutations, or a maintenance pass aborted mid-way);
    * ``view.refresh()`` -- force maintenance now (a stale view is
      re-evaluated cold), returning the
      :class:`~repro.datalog.ivm.MaintenanceResult`;
    * ``view.drop()`` -- unregister; dropping the last view closes the
      shared materializer and stops delta capture.
    """

    def __init__(
        self,
        session: "Session",
        predicates: Iterable[str],
        query: Optional[Query] = None,
    ):
        self._session = session
        #: the predicate keys this view covers (query answering through
        #: the view requires the query predicate to be one of these)
        self.predicates = frozenset(predicates)
        #: the query this view answers, when created from one
        self.query = query
        self.dropped = False

    def _materializer(self) -> MaterializedProgram:
        if self.dropped or self._session._materializer is None:
            raise ReproError("this MaterializedView has been dropped")
        return self._session._materializer

    @property
    def version(self) -> int:
        """Database version the materialized state reflects."""
        return self._materializer().synced_version

    @property
    def stale(self) -> bool:
        """True when serving would need maintenance first: mutations
        are pending, or a prior maintenance pass aborted."""
        m = self._materializer()
        return m.stale or m.pending

    @property
    def rows(self) -> QueryResult:
        """Answer the view's query from maintained state (maintaining
        first if needed); a :class:`QueryResult` with
        ``maintained=True``."""
        return self._session._view_result(self, self._query_literal())

    def refresh(self) -> MaintenanceResult:
        """Run maintenance now.  Pending deltas are propagated; a stale
        view is rebuilt by cold re-evaluation.  Propagates budget trips
        and injected faults (unlike the implicit maintenance on
        mutations, which degrades to staleness)."""
        return self._materializer().maintain()

    def drop(self) -> None:
        """Unregister this view (idempotent)."""
        if not self.dropped:
            self.dropped = True
            self._session._drop_view(self)

    def tuples(self, pred_key: Optional[str] = None):
        """Raw maintained tuples of one covered predicate."""
        if pred_key is None:
            if len(self.predicates) != 1:
                raise ReproError(
                    "this view covers several predicates; pass "
                    f"tuples(pred_key) (one of {sorted(self.predicates)})"
                )
            (pred_key,) = self.predicates
        if pred_key not in self.predicates:
            raise ReproError(
                f"predicate {pred_key!r} is not covered by this view"
            )
        return self._materializer().tuples(pred_key)

    def _query_literal(self) -> Query:
        if self.query is not None:
            return self.query
        if len(self.predicates) != 1:
            raise ReproError(
                "this view covers several predicates; use "
                "session.query(...) or view.tuples(pred_key) instead of "
                ".rows"
            )
        (pred_key,) = self.predicates
        return self._session._all_free_query(pred_key)

    def __repr__(self):
        state = "dropped" if self.dropped else (
            "stale" if self.stale else "fresh"
        )
        return (
            f"MaterializedView({sorted(self.predicates)}, {state}, "
            f"version={self._session._materializer.synced_version if self._session._materializer else '-'})"
        )


class Session:
    """A stateful query session over one program and one database.

    Construct from surface syntax (rules, facts, and optionally queries
    in one string) or from a parsed :class:`Program` plus an optional
    :class:`Database`::

        session = Session(source)
        session = Session(program=program, database=db)

    Facts are asserted and retracted between queries through
    :meth:`assert_` and :meth:`retract` (one fact, an iterable of
    facts, or ``(pred, *values)``; the pre-IVM names ``add`` /
    ``add_facts`` / ``add_values`` / ``add_many`` / ``retract_facts`` /
    ``retract_values`` / ``retract_many`` remain as deprecated
    aliases); every mutation bumps the database version and drops the
    memoized answers whose relation footprint it touches (out-of-band
    mutations through direct ``Relation`` access drop all of them).
    ``session.query(...)`` accepts the query as text or as a parsed
    :class:`Query`, and ``method`` as one of :data:`SESSION_METHODS`
    (default ``"auto"``).

    :meth:`materialize` turns cold-per-mutation querying into
    incremental view maintenance: derived relations are evaluated once
    and then maintained by delta propagation on every assert/retract
    (``with session.batch():`` coalesces N mutations into one pass),
    and :meth:`query` answers from a covering fresh view before
    consulting the memo.
    """

    def __init__(
        self,
        source: Optional[str] = None,
        *,
        program: Optional[Program] = None,
        database: Optional[Database] = None,
        use_planner: bool = True,
        sip_builder: SipBuilder = build_full_sip,
        plan_cache: Optional[PlanCache] = None,
        memo_size: int = 1024,
    ):
        if source is not None and program is not None:
            raise ValueError("pass source or program, not both")
        queries: Tuple[Query, ...] = ()
        if source is not None:
            parsed = parse_program(source)
            program = parsed.program
            queries = parsed.queries
            if database is None:
                database = Database()
            database.add_facts(parsed.facts)
        elif program is None:
            raise ValueError("pass a source string or program=...")
        if database is None:
            database = Database()
        self._program = program
        self._database = database
        self._use_planner = use_planner
        self._sip_builder = sip_builder
        self._plan_cache = (
            plan_cache if plan_cache is not None else shared_plan_cache()
        )
        #: queries embedded in the source, in order; query() defaults to
        #: the first one
        self.queries = queries
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        #: mutations whose invalidation was footprint-targeted and kept
        #: at least one entry alive (the finer invalidation paying off)
        self.memo_partial_invalidations = 0
        self._memo_size = memo_size
        self._memo: "OrderedDict[tuple, QueryResult]" = OrderedDict()
        #: memo key -> the relation names its rows depend on
        self._memo_footprints: Dict[tuple, frozenset] = {}
        self._memo_version = database.version
        #: per-signature auto-dispatch decisions and per-query compiled
        #: artifacts; all depend only on the (immutable) program and the
        #: query, never on the facts, so mutations do not drop them
        self._auto_choice: Dict[tuple, str] = {}
        self._adorned: Dict[tuple, AdornedProgram] = {}
        self._rewritten: Dict[tuple, RewrittenProgram] = {}
        #: one shared MaterializedProgram backs every live view; created
        #: lazily by materialize(), closed when the last view drops
        self._materializer: Optional[MaterializedProgram] = None
        self._views: List["MaterializedView"] = []
        #: nesting depth of ``with session.batch():`` -- mutations
        #: inside a batch defer maintenance to batch exit
        self._batch_depth = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        return self._program

    @property
    def database(self) -> Database:
        return self._database

    @property
    def version(self) -> int:
        """The owned database's monotone mutation counter."""
        return self._database.version

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    def counters(self) -> Dict[str, int]:
        """Session-level cache counters, as one dict."""
        return {
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_invalidations": self.memo_invalidations,
            "memo_partial_invalidations": self.memo_partial_invalidations,
            "memo_entries": len(self._memo),
            "plan_cache_hits": self._plan_cache.hits,
            "plan_cache_misses": self._plan_cache.misses,
            "db_version": self.version,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release everything this session accumulated (idempotent).

        Drops every live :class:`MaterializedView` (closing the shared
        materializer, which detaches its mutation log from the
        database), clears the answer memo and its footprints, and
        forgets the per-query dispatch/rewrite caches.  The program and
        database are untouched -- a closed session can be queried again
        (state simply rebuilds), which is what lets a server pool and
        recycle sessions without leaking materialized state.
        """
        for view in list(self._views):
            view.drop()
        if self._materializer is not None:
            self._materializer.close()
            self._materializer = None
        self._memo.clear()
        self._memo_footprints.clear()
        self._auto_choice.clear()
        self._adorned.clear()
        self._rewritten.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def materialized_relations(self) -> Dict[str, "Relation"]:
        """Frozen copies of the fresh maintained derived relations.

        Empty when no views are live or the materializer is stale or
        has unapplied deltas -- never a stale answer.  Each value is an
        independent :class:`Relation` copy (indexes carried over), so
        the caller may hand them to concurrent readers while this
        session keeps mutating; this is the publish hook the query
        server uses to serve view-covered queries from a snapshot.
        """
        m = self._materializer
        if m is None or not self._views or not m.fresh:
            return {}
        out: Dict[str, Relation] = {}
        for pred_key in m.derived_keys:
            rel = m.working.get(pred_key)
            if rel is not None:
                out[pred_key] = rel.copy()
        return out

    # ------------------------------------------------------------------
    # mutation (assertion / retraction)
    # ------------------------------------------------------------------
    def assert_(self, *args) -> Union[bool, int]:
        """Assert facts; the one assertion entry point.

        Three call shapes::

            session.assert_("par(a, b)")          # one fact -> bool
            session.assert_(literal)              # one Literal -> bool
            session.assert_(["par(a, b)", lit])   # iterable -> count
            session.assert_("par", "a", "b")      # (pred, *values) -> bool

        Every shape bumps the database version (no-ops excepted: a
        re-assert of a present fact leaves the version and the memo
        untouched), drops the memo entries whose footprint it touches,
        and -- when materialized views exist and no :meth:`batch` is
        open -- triggers one incremental maintenance pass.
        """
        return self._mutate(True, args)

    def retract(self, *args) -> Union[bool, int]:
        """Retract facts; same call shapes as :meth:`assert_`.

        A retract of an absent fact is a no-op: the version stays, the
        memo stays, no maintenance runs.
        """
        return self._mutate(False, args)

    def _mutate(self, asserting: bool, args: tuple) -> Union[bool, int]:
        """The one dispatch point behind assert_/retract and every
        deprecated alias."""
        kind, payload = self._dispatch_mutation(args)
        db = self._database
        self._note_mutation()  # reconcile out-of-band drift first
        if kind == "fact":
            result: Union[bool, int] = (
                db.add_fact if asserting else db.retract_fact
            )(payload)
            touched = {payload.pred_key}
        elif kind == "facts":
            result = (db.add_facts if asserting else db.retract_facts)(
                payload
            )
            touched = {lit.pred_key for lit in payload}
        else:  # one (pred, *values) row
            pred_key, row = payload
            result = bool(
                (db.add_values if asserting else db.retract_values)(
                    pred_key, [row]
                )
            )
            touched = {pred_key}
        self._note_mutation(touched)
        self._after_mutation()
        return result

    @staticmethod
    def _dispatch_mutation(args: tuple) -> Tuple[str, object]:
        """Classify an assert_/retract argument list.

        One str/Literal is a fact; one other argument is an iterable of
        facts; two or more are ``(pred, *values)`` for a single row.
        """
        if not args:
            raise ValueError(
                "assert_/retract need a fact, an iterable of facts, or "
                "(pred, *values)"
            )
        if len(args) == 1:
            arg = args[0]
            if isinstance(arg, (str, Literal)):
                return "fact", Session._as_fact(arg)
            return "facts", [Session._as_fact(fact) for fact in arg]
        pred_key = args[0]
        if not isinstance(pred_key, str):
            raise ValueError(
                "the (pred, *values) form needs a predicate name first, "
                f"got {pred_key!r}"
            )
        return "values", (pred_key, tuple(args[1:]))

    def _mutate_rows(
        self, asserting: bool, pred_key: str, rows, typed: bool
    ) -> int:
        """Bulk per-predicate path kept for the deprecated aliases."""
        db = self._database
        if typed:
            fn = db.add_tuples if asserting else db.retract_tuples
        else:
            fn = db.add_values if asserting else db.retract_values
        self._note_mutation()
        count = fn(pred_key, rows)
        self._note_mutation({pred_key})
        self._after_mutation()
        return count

    # -- deprecated aliases (the pre-IVM mutation surface) --------------
    @staticmethod
    def _deprecated(old: str, new: str) -> None:
        warnings.warn(
            f"Session.{old}() is deprecated; use Session.{new}",
            DeprecationWarning,
            stacklevel=3,
        )

    def add(self, fact: Union[str, Literal]) -> bool:
        """Deprecated alias for :meth:`assert_` on one fact."""
        self._deprecated("add", "assert_(fact)")
        return self.assert_(fact)

    def add_facts(self, facts: Iterable[Union[str, Literal]]) -> int:
        """Deprecated alias for :meth:`assert_` on an iterable."""
        self._deprecated("add_facts", "assert_(facts)")
        return self.assert_(list(facts))

    def add_values(
        self, pred_key: str, rows: Iterable[Iterable[object]]
    ) -> int:
        """Deprecated alias: assert rows of raw values under one
        predicate (``assert_(pred, *values)`` per row)."""
        self._deprecated("add_values", "assert_(pred, *values)")
        return self._mutate_rows(True, pred_key, rows, typed=False)

    def add_many(
        self, pred_key: str, rows: Iterable[Iterable[Term]]
    ) -> int:
        """Deprecated alias: assert rows of ground Terms."""
        self._deprecated("add_many", "assert_(pred, *values)")
        return self._mutate_rows(True, pred_key, rows, typed=True)

    def retract_facts(self, facts: Iterable[Union[str, Literal]]) -> int:
        """Deprecated alias for :meth:`retract` on an iterable."""
        self._deprecated("retract_facts", "retract(facts)")
        return self.retract(list(facts))

    def retract_values(
        self, pred_key: str, rows: Iterable[Iterable[object]]
    ) -> int:
        """Deprecated alias: retract rows of raw values."""
        self._deprecated("retract_values", "retract(pred, *values)")
        return self._mutate_rows(False, pred_key, rows, typed=False)

    def retract_many(
        self, pred_key: str, rows: Iterable[Iterable[Term]]
    ) -> int:
        """Deprecated alias: retract rows of ground Terms."""
        self._deprecated("retract_many", "retract(pred, *values)")
        return self._mutate_rows(False, pred_key, rows, typed=True)

    @staticmethod
    def _as_fact(fact: Union[str, Literal]) -> Literal:
        if isinstance(fact, str):
            fact = parse_literal(fact.rstrip().rstrip("."))
        return fact

    def _note_mutation(self, touched: Optional[Set[str]] = None) -> None:
        """Reconcile the memo with the database version.

        ``touched`` is the set of relation names a Session-mediated
        mutation just changed: only entries whose recorded relation
        footprint intersects it are dropped; the rest stay valid and
        are re-keyed to the new version.  ``touched=None`` means the
        provenance of the version move is unknown (an out-of-band
        mutation through direct ``Relation`` access), so every entry is
        dropped.  Dropped entries count toward ``memo_invalidations``;
        a targeted pass that keeps at least one entry alive bumps
        ``memo_partial_invalidations``.
        """
        version = self._database.version
        if version == self._memo_version:
            return
        if touched is None or not self._memo:
            dropped = len(self._memo)
            if dropped:
                self.memo_invalidations += dropped
                self._memo.clear()
                self._memo_footprints.clear()
            self._memo_version = version
            return
        survivors: "OrderedDict[tuple, QueryResult]" = OrderedDict()
        footprints: Dict[tuple, frozenset] = {}
        dropped = 0
        for key, cached in self._memo.items():
            footprint = self._memo_footprints.get(key)
            if footprint is None or footprint & touched:
                dropped += 1
                continue
            # disjoint footprint: the rows cannot have changed, so the
            # entry is re-keyed to the new version (the version is the
            # last component of every memo key) and stays servable
            new_key = key[:-1] + (version,)
            survivors[new_key] = replace(cached, db_version=version)
            footprints[new_key] = footprint
        self.memo_invalidations += dropped
        if survivors:
            self.memo_partial_invalidations += 1
        self._memo = survivors
        self._memo_footprints = footprints
        self._memo_version = version

    # ------------------------------------------------------------------
    # materialized views (incremental maintenance)
    # ------------------------------------------------------------------
    def materialize(
        self,
        target: Union[str, Query, Iterable[str], None] = None,
    ) -> MaterializedView:
        """Materialize derived relations and maintain them by deltas.

        ``target`` is a query (text ending in ``?`` or a parsed
        :class:`Query`), one predicate name, an iterable of predicate
        names, or None for every derived predicate.  The first call
        evaluates the program once (compiled stratified semi-naive) and
        starts relation-level delta capture; later mutations propagate
        through per-stratum delta rules instead of re-evaluating --
        counting-based deletion on non-recursive strata, DRed on
        recursive ones.  Subsequent views share that state.

        ``session.query()`` answers from a covering fresh view before
        consulting the memo; see :class:`MaterializedView` for the
        handle's surface.
        """
        query: Optional[Query] = None
        if target is None:
            self._ensure_materializer()
            predicates = frozenset(self._materializer.derived_keys)
        elif isinstance(target, Query):
            query = target
            predicates = frozenset((target.literal.pred_key,))
        elif isinstance(target, str):
            text = target.strip()
            if text.endswith("?"):
                query = parse_query(text)
                predicates = frozenset((query.literal.pred_key,))
            else:
                predicates = frozenset((text,))
        else:
            predicates = frozenset(target)
        known = _mentioned_relations(self._program) | frozenset(
            self._database.predicate_keys()
        )
        unknown = predicates - known
        if unknown:
            raise ReproError(
                f"cannot materialize unknown predicate(s) "
                f"{sorted(unknown)}; the program and database mention "
                f"{sorted(known)}"
            )
        self._ensure_materializer()
        view = MaterializedView(self, predicates, query)
        self._views.append(view)
        return view

    def _ensure_materializer(self) -> MaterializedProgram:
        if self._materializer is None:
            self._materializer = MaterializedProgram(
                self._program,
                self._database,
                plan_cache=self._plan_cache,
            )
        return self._materializer

    def _drop_view(self, view: MaterializedView) -> None:
        self._views = [v for v in self._views if v is not view]
        if not self._views and self._materializer is not None:
            self._materializer.close()
            self._materializer = None

    @contextmanager
    def batch(self):
        """Batch mutations into one maintenance pass.

        Inside ``with session.batch():`` asserts and retracts apply to
        the database (version bumps, memo invalidation) but view
        maintenance is deferred; on exit the accumulated delta
        propagates in a single pass.  Nesting is allowed -- the
        outermost exit maintains.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._maintain_views()

    def _after_mutation(self) -> None:
        """Hook every Session-mediated mutation ends with: keep live
        views fresh, unless a batch is open."""
        if self._batch_depth == 0:
            self._maintain_views()

    def _maintain_views(self) -> None:
        """One incremental maintenance pass over the shared state.

        Runs under any ``REPRO_FAULT_INJECT`` fault plan in the
        environment.  An aborted pass (budget trip, injected fault) is
        swallowed: ``MaterializedProgram.maintain`` has already marked
        the state stale and discarded the partial pass, so queries fall
        back to cold evaluation until :meth:`MaterializedView.refresh`
        or a later successful pass heals it.
        """
        m = self._materializer
        if m is None or not self._views:
            return
        if not (m.pending or m.stale):
            return
        budget = EvaluationBudget.from_options()
        meter = budget.start() if budget is not None else None
        try:
            m.maintain(meter=meter)
        except ReproError:
            pass  # state is stale; cold queries still answer correctly

    def _all_free_query(self, pred_key: str) -> Query:
        """An all-free query literal for a predicate (for view.rows)."""
        arity = None
        for rule in self._program.rules:
            if rule.head.pred_key == pred_key:
                arity = len(rule.head.args)
                break
        if arity is None:
            rel = self._database.get(pred_key)
            arity = rel.arity if rel is not None else None
            if arity is None:
                raise ReproError(
                    f"cannot infer the arity of {pred_key!r}: no rule "
                    "defines it and no facts exist under it"
                )
        args = tuple(Variable(f"V{i}") for i in range(arity))
        return Query(Literal(pred_key, args))

    def _view_result(
        self,
        view: MaterializedView,
        query: Query,
        meter=None,
        started: Optional[float] = None,
        requested_method: str = "materialized",
    ) -> QueryResult:
        """Serve a query from the maintained state (maintaining first
        when mutations are pending or the state is stale)."""
        if started is None:
            started = time.perf_counter()
        m = view._materializer()
        maintenance_elapsed = 0.0
        if m.stale or m.pending:
            m.maintain(meter=meter)
            maintenance_elapsed = m.last_elapsed
        rows = _select_rows(m.working, query.literal)
        return QueryResult(
            rows=rows,
            method="materialized",
            requested_method=requested_method,
            query=query,
            from_memo=False,
            db_version=m.synced_version,
            elapsed=time.perf_counter() - started,
            stats=None,
            memo_hits=self.memo_hits,
            memo_misses=self.memo_misses,
            maintained=True,
            maintenance_elapsed=maintenance_elapsed,
            _session=self,
        )

    def _view_covering(self, query: Query) -> Optional[MaterializedView]:
        """The first live view whose predicates cover the query."""
        pred_key = query.literal.pred_key
        for view in self._views:
            if not view.dropped and pred_key in view.predicates:
                return view
        return None

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        query: Union[str, Query, None] = None,
        method: str = "auto",
        *,
        engine: str = "seminaive",
        mode: str = "numeric",
        optimize: bool = True,
        semijoin: bool = False,
        max_iterations: Optional[int] = None,
        max_facts: Optional[int] = None,
        use_planner: Optional[bool] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        cancellation: Optional[CancellationToken] = None,
        budget: Optional[EvaluationBudget] = None,
        on_budget_exceeded: Optional[str] = None,
    ) -> QueryResult:
        """Answer a query, consulting the cross-evaluation memo first.

        ``query`` may be text (``"anc(john, X)?"``), a parsed
        :class:`Query`, or None to use the first query embedded in the
        session source.  ``method`` is ``"auto"`` (default), a rewrite
        method, or a baseline; the remaining options mirror
        :func:`repro.answer_query` and participate in the memo key.

        Resource governance: ``timeout`` (seconds of wall clock),
        ``max_facts`` (derived-fact cap), and ``cancellation`` (a
        :class:`~repro.core.limits.CancellationToken`) assemble an
        :class:`~repro.core.limits.EvaluationBudget`; pass ``budget=``
        directly for the full option set (tuples scanned, memory
        estimate, fault plan) -- but not both.  A budget trip raises
        :class:`~repro.core.limits.BudgetExceeded` carrying structured
        progress, except under graceful degradation: when the tripping
        strategy was a rewrite method and either dispatch was ``"auto"``
        or ``on_budget_exceeded="degrade"`` was passed, the compiled
        semi-naive fallback retries once under the same meter (the
        wall-clock deadline stays absolute; fact/tuple caps apply to the
        retry's fresh counters) and the result is marked ``degraded``.
        ``on_budget_exceeded="raise"`` disables degradation even for
        auto.  Cancellation always propagates.  Budget options do not
        participate in the memo key: a memo hit costs no evaluation, so
        it is served regardless of the budget, and aborted or degraded
        evaluations are never memoized.

        ``workers`` > 1 runs the bottom-up evaluations (the baselines
        and the evaluation behind every rewrite method) on the sharded
        worker pool (:mod:`repro.datalog.parallel`); answers and the
        solution counters are identical to serial.  QSQ is top-down and
        ignores it.  ``workers`` participates in the memo key -- the
        rows agree, but the memoized counters describe the run that
        produced them.
        """
        query = self._as_query(query)
        if method not in SESSION_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of "
                f"{SESSION_METHODS}"
            )
        if on_budget_exceeded not in (None, "degrade", "raise"):
            raise ValueError(
                f"unknown on_budget_exceeded policy "
                f"{on_budget_exceeded!r}; expected 'degrade' or 'raise'"
            )
        if use_planner is None:
            use_planner = self._use_planner
        budget = EvaluationBudget.from_options(
            budget=budget,
            timeout=timeout,
            max_facts=max_facts,
            cancellation=cancellation,
        )
        meter = budget.start() if budget is not None else None
        started = time.perf_counter()
        self._note_mutation()  # catch out-of-band database mutations
        # -- materialized-view fast path: a covering fresh view answers
        # before the memo is even consulted (the view IS the cache, and
        # unlike the memo it survives mutations by delta maintenance)
        view = self._view_covering(query) if self._views else None
        if method == "materialized":
            if view is None:
                raise ReproError(
                    "method='materialized' needs a covering view; call "
                    "session.materialize(...) first"
                )
            return self._view_result(view, query, meter, started, method)
        if view is not None and method == "auto":
            m = self._materializer
            if m is not None and not m.stale:
                if not m.pending:
                    return self._view_result(
                        view, query, meter, started, method
                    )
                if self._batch_depth == 0:
                    try:
                        return self._view_result(
                            view, query, meter, started, method
                        )
                    except ReproError:
                        # the serving maintenance pass aborted (budget
                        # trip / injected fault): the state is stale
                        # now, answer cold below
                        pass
        version = self._memo_version
        key = (
            query,
            method,
            engine,
            mode,
            optimize,
            semijoin,
            max_iterations,
            use_planner,
            workers,
            version,
        )
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return replace(
                cached,
                from_memo=True,
                elapsed=time.perf_counter() - started,
                memo_hits=self.memo_hits,
                memo_misses=self.memo_misses,
                budget_spent=meter.spent() if meter is not None else None,
            )
        self.memo_misses += 1
        executed = method
        degraded = False
        try:
            if method == "auto":
                executed, answer = self._execute_auto(
                    query,
                    engine,
                    mode,
                    optimize,
                    semijoin,
                    max_iterations,
                    use_planner,
                    workers,
                    meter,
                )
            else:
                answer = self._execute(
                    query,
                    method,
                    engine,
                    mode,
                    optimize,
                    semijoin,
                    max_iterations,
                    use_planner,
                    workers,
                    meter,
                )
        except BudgetExceeded as exc:
            fallback = self._degradation_fallback(
                method, exc, on_budget_exceeded
            )
            if fallback is None:
                raise
            # retry once with compiled semi-naive under the same meter:
            # the wall-clock deadline is absolute, fact/tuple caps apply
            # to the retry's fresh statistics
            answer = self._execute(
                query,
                fallback,
                engine,
                mode,
                optimize,
                semijoin,
                max_iterations,
                use_planner,
                workers,
                meter,
            )
            executed = fallback
            degraded = True
        if meter is not None:
            # install boundary: the last abort point before the answer
            # is published and memoized -- an injected fault here must
            # still leave the memo without the entry
            meter.tick_install()
        result = QueryResult(
            rows=answer.answers,
            method=answer.strategy,
            requested_method=method,
            query=query,
            from_memo=False,
            db_version=version,
            elapsed=time.perf_counter() - started,
            stats=answer.stats,
            answer=answer,
            memo_hits=self.memo_hits,
            memo_misses=self.memo_misses,
            degraded=degraded,
            budget_spent=meter.spent() if meter is not None else None,
            _session=self,
        )
        assert executed != "auto"
        if not degraded:
            self._memo[key] = self._slim_for_memo(result)
            self._memo_footprints[key] = self._footprint_for(query, answer)
            while len(self._memo) > self._memo_size:
                evicted, _ = self._memo.popitem(last=False)
                self._memo_footprints.pop(evicted, None)
        return result

    @staticmethod
    def _degradation_fallback(
        requested: str, exc: BudgetExceeded, policy: Optional[str]
    ) -> Optional[str]:
        """The method to retry with after a budget trip, or None.

        Degradation applies only when the strategy that tripped was a
        rewrite method (the fallback is a genuinely different plan;
        re-running a tripped baseline would just trip again), and only
        under auto-dispatch by default -- an explicitly requested
        rewrite method degrades only with ``on_budget_exceeded=
        "degrade"``.  ``"raise"`` disables degradation everywhere.
        """
        if policy == "raise":
            return None
        tripped = getattr(exc, "method", None)
        if tripped not in REWRITE_METHODS or tripped == _AUTO_FALLBACK:
            return None
        if requested == "auto" or policy == "degrade":
            return _AUTO_FALLBACK
        return None

    @staticmethod
    def _slim_for_memo(result: QueryResult) -> QueryResult:
        """A copy safe to retain: the memo stores answers and counters,
        not evaluation artifacts.

        The freshly returned (cold) result keeps its full
        ``QueryAnswer`` -- including the evaluation's working database
        and the raw QSQ Q/F sets -- but retaining those in up to
        ``memo_size`` entries would pin a derived database copy per
        entry.  Memo hits therefore expose ``rows``/``stats`` and the
        summary counters only.  The rows are snapshotted into a
        frozenset: the memo must not alias the mutable set handed to
        the cold caller (mutating a returned result would otherwise
        corrupt every later hit), and an immutable snapshot can be
        served to all hits by reference.
        """
        rows = frozenset(result.rows)
        answer = result.answer
        if answer is not None:
            qsq = answer.qsq
            if qsq is not None:
                qsq = QSQResult(
                    iterations=qsq.iterations,
                    subqueries_generated=qsq.subqueries_generated,
                    plan_cache_hits=qsq.plan_cache_hits,
                    plan_cache_misses=qsq.plan_cache_misses,
                )
            answer = replace(answer, answers=rows, evaluation=None, qsq=qsq)
        return replace(result, rows=rows, answer=answer)

    def _footprint_for(self, query: Query, answer: QueryAnswer) -> frozenset:
        """Relation names the memoized rows depend on.

        The rewrite methods read the relations their rewritten program
        mentions, plus every original name reachable from the query
        predicate (``seeded_database`` mirrors facts asserted under
        original derived names into the adorned relations) -- so
        mutating a relation outside the query's cone leaves the entry
        valid.  QSQ reads the adorned program's relations.  The
        bottom-up baselines evaluate the original program and extract
        from the query predicate's relation, so everything reachable
        from the query predicate participates (derived names included:
        evaluation seeds derived relations with any pre-existing facts
        under those names).
        """
        rewritten = answer.rewritten
        if rewritten is not None:
            return _mentioned_relations(
                rewritten.program,
                extra=(rewritten.answer_pred_key,)
                + tuple(seed.pred_key for seed in rewritten.seed_facts),
            ) | frozenset(
                reachable_predicates(
                    self._program, [query.literal.pred_key]
                )
            )
        if answer.qsq is not None:
            adorned = self._adorned_for(query)
            return _mentioned_relations(
                adorned.program,
                extra=(adorned.query_literal.pred_key,),
            )
        return frozenset(
            reachable_predicates(self._program, [query.literal.pred_key])
        )

    def _as_query(self, query: Union[str, Query, None]) -> Query:
        if query is None:
            if not self.queries:
                raise ReproError(
                    "no query: pass one to query() or embed one in the "
                    "session source"
                )
            return self.queries[0]
        if isinstance(query, str):
            return parse_query(query)
        return query

    # ------------------------------------------------------------------
    # dispatch + execution
    # ------------------------------------------------------------------
    def _signature(self, query: Query) -> tuple:
        """What auto-dispatch and the program caches key on: the
        predicate and the bound/free pattern (adornment), not the
        constants."""
        return (
            query.literal.pred_key,
            tuple(arg.is_ground() for arg in query.literal.args),
        )

    def _execute_auto(
        self,
        query,
        engine,
        mode,
        optimize,
        semijoin,
        max_iterations,
        use_planner,
        workers,
        meter=None,
    ) -> Tuple[str, QueryAnswer]:
        # the decision depends on the query signature AND the options
        # that feed the rewrite, so one option set cannot poison the
        # dispatch of another (notably plain default-option queries)
        decision_key = (self._signature(query), mode, optimize, semijoin)
        # stratified programs get the rewrite attempt too (conservative
        # magic extension); only a genuine adornment-level rejection --
        # cached per signature -- routes a query to the bottom-up
        # fallback permanently
        choice = self._auto_choice.get(decision_key, _AUTO_PRIMARY)
        if choice == _AUTO_PRIMARY:
            try:
                answer = self._execute(
                    query,
                    _AUTO_PRIMARY,
                    engine,
                    mode,
                    optimize,
                    semijoin,
                    max_iterations,
                    use_planner,
                    workers,
                    meter,
                )
            except _AUTO_PROGRAM_REJECTIONS:
                choice = _AUTO_FALLBACK
                self._auto_choice[decision_key] = choice
            except RewriteError:
                # option-level incompatibility: answer via the fallback
                # for this call, but re-attempt the rewrite next time
                choice = _AUTO_FALLBACK
            else:
                self._auto_choice[decision_key] = _AUTO_PRIMARY
                return _AUTO_PRIMARY, answer
        answer = self._execute(
            query,
            choice,
            engine,
            mode,
            optimize,
            semijoin,
            max_iterations,
            use_planner,
            workers,
            meter,
        )
        return choice, answer

    def _execute(
        self,
        query,
        method,
        engine,
        mode,
        optimize,
        semijoin,
        max_iterations,
        use_planner,
        workers,
        meter=None,
    ) -> QueryAnswer:
        """One evaluation, no memo: the consolidated dispatch that used
        to be duplicated across pipeline.answer_query, the CLI, and the
        benchmark drivers.

        A :class:`BudgetExceeded` escaping any path is tagged with the
        method that tripped it, so the degradation policy upstream can
        tell a tripped rewrite (worth retrying semi-naive) from a
        tripped baseline (not worth retrying).
        """
        try:
            return self._execute_inner(
                query,
                method,
                engine,
                mode,
                optimize,
                semijoin,
                max_iterations,
                use_planner,
                workers,
                meter,
            )
        except BudgetExceeded as exc:
            if exc.method is None:
                exc.method = method
            raise

    def _execute_inner(
        self,
        query,
        method,
        engine,
        mode,
        optimize,
        semijoin,
        max_iterations,
        use_planner,
        workers,
        meter,
    ) -> QueryAnswer:
        if method in ("naive", "seminaive"):
            return bottom_up_answer(
                self._program,
                self._database,
                query,
                method,
                max_iterations,
                None,
                use_planner,
                plan_cache=self._plan_cache,
                meter=meter,
                workers=workers,
            )
        if method == "qsq":
            adorned = self._adorned_for(query)
            qsq = qsq_evaluate(
                adorned.program,
                self._database,
                adorned.query_literal,
                max_iterations=max_iterations,
                use_planner=use_planner,
                plan_cache=self._plan_cache,
                meter=meter,
            )
            stats = EvaluationStats(
                iterations=qsq.iterations,
                facts_derived=qsq.answer_count(),
                plan_cache_hits=qsq.plan_cache_hits,
                plan_cache_misses=qsq.plan_cache_misses,
            )
            return QueryAnswer(
                answers=qsq.query_answers(adorned.query_literal),
                strategy="qsq",
                stats=stats,
                qsq=qsq,
            )
        rewritten = self._rewritten_for(
            query, method, mode, optimize, semijoin
        )
        seeded = rewritten.seeded_database(self._database)
        result = evaluate(
            rewritten.program,
            seeded,
            method=engine,
            max_iterations=max_iterations,
            use_planner=use_planner,
            plan_cache=self._plan_cache,
            meter=meter,
            workers=workers,
        )
        return QueryAnswer(
            answers=rewritten.extract_answers(result),
            strategy=method,
            stats=result.stats,
            rewritten=rewritten,
            evaluation=result,
        )

    def _adorned_for(self, query: Query) -> AdornedProgram:
        """The adorned program for a query, cached per full query.

        Keyed by the query literal (not just the signature): the
        adorned *rules* depend only on the bound/free pattern, but the
        adorned query literal carries the constants.
        """
        key = (query.literal, self._sip_builder)
        adorned = self._adorned.get(key)
        if adorned is None:
            adorned = adorn_program(
                self._program, query, self._sip_builder
            )
            if len(self._adorned) >= 256:
                self._adorned.pop(next(iter(self._adorned)))
            self._adorned[key] = adorned
        return adorned

    def _rewritten_for(
        self, query, method, mode, optimize, semijoin
    ) -> RewrittenProgram:
        """The rewritten program for a query, cached per full query
        (the seed facts embed the query constants)."""
        key = (
            query.literal,
            method,
            self._sip_builder,
            mode,
            optimize,
            semijoin,
        )
        rewritten = self._rewritten.get(key)
        if rewritten is None:
            rewritten = rewrite(
                self._program,
                query,
                method=method,
                sip_builder=self._sip_builder,
                mode=mode,
                optimize=optimize,
                semijoin=semijoin,
                adorned=self._adorned_for(query),
            )
            if len(self._rewritten) >= 256:
                self._rewritten.pop(next(iter(self._rewritten)))
            self._rewritten[key] = rewritten
        return rewritten

    # ------------------------------------------------------------------
    # explanation
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, Query, None] = None,
        limit: Optional[int] = None,
    ) -> List[DerivationNode]:
        """Derivation trees for a query's answers on the current facts.

        Runs a full bottom-up evaluation (stratified when the program
        negates) and reconstructs one proof tree per answer, up to
        ``limit``.  Answers are explained in sorted order so the output
        is deterministic.
        """
        from .datalog.derivation import explain as explain_fact
        from .datalog.derivation import fact_stages
        from .datalog.engine import answer_tuples

        query = self._as_query(query)
        result = evaluate(
            self._program, self._database, plan_cache=self._plan_cache
        )
        answers = answer_tuples(result, query.literal)
        stages = fact_stages(self._program, self._database, result)
        free_positions = [
            i
            for i, arg in enumerate(query.literal.args)
            if not arg.is_ground()
        ]
        trees: List[DerivationNode] = []
        for row in sorted(answers, key=str):
            if limit is not None and len(trees) >= limit:
                break
            binding = dict(zip(free_positions, row))
            fact_args = [
                binding.get(i, arg)
                for i, arg in enumerate(query.literal.args)
            ]
            fact = Literal(query.pred, tuple(fact_args))
            trees.append(
                explain_fact(
                    self._program,
                    self._database,
                    result,
                    fact,
                    _stages=stages,
                )
            )
        return trees

    def __repr__(self):
        return (
            f"Session({len(self._program.rules)} rules, "
            f"{self._database.total_facts()} facts, "
            f"version={self.version}, memo={len(self._memo)})"
        )
