"""Bill-of-materials-with-exceptions workloads (stratified negation).

The classic scenario the stratified-negation subsystem exists for: a
part-subpart tree (``subpart(P, S)``: assembly ``P`` directly contains
``S``), an exception list of recalled/forbidden parts, and views that
need set complement:

* ``component(P, S)`` -- the transitive explosion (stratum 0);
* ``tainted(P)``      -- parts that are exceptions or contain one,
  propagated edge-by-edge up the part tree (stratum 0, positive; its
  cone deliberately avoids the ``component`` explosion so the
  conservative magic rewrite of a selective ``clean`` query only pays
  for the queried part's subtree);
* ``clean(P, S)``     -- components *not* tainted (stratum 1, one
  negation);
* ``blocked(P)``      -- assemblies with at least one non-clean
  component (stratum 2, negation over ``clean``);
* ``buildable(P)``    -- parts with no blocked explosion (stratum 3;
  the ``forall`` encoded as double negation).

Generators are parameterized by tree ``depth``, ``fanout``, and an
``exception_rate`` (per-part probability, seeded RNG), so benchmarks
can scale the workload and CI can shrink it.  ``bom_source`` renders a
complete ``.dl`` text (rules + facts + query) for the CLI; since the
magic rewrites accept stratified programs, ``--method auto`` (or an
explicit ``--method magic``/``supplementary_magic``) works alongside
the bottom-up baselines:

    python -m repro workload bom --depth 4 --fanout 2 \\
        --exception-rate 0.15 --seed 7 > bom.dl
    python -m repro query bom.dl --method auto --stats
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..datalog.ast import Program, Query
from ..datalog.database import Database
from ..datalog.parser import parse_program, parse_query

__all__ = [
    "BOM",
    "bom_program",
    "bom_parts",
    "bom_subpart_edges",
    "bom_exceptions",
    "bom_database",
    "bom_source",
    "bom_query",
]

BOM = """
component(P, S) :- subpart(P, S).
component(P, S) :- subpart(P, M), component(M, S).
tainted(P) :- exception(P).
tainted(P) :- subpart(P, S), tainted(S).
clean(P, S) :- component(P, S), not tainted(S).
blocked(P) :- component(P, S), not clean(P, S).
buildable(P) :- part(P), not blocked(P).
"""


def bom_program() -> Program:
    """The BOM-with-exceptions program (4 strata, 3 negations)."""
    return parse_program(BOM).program


def _part_count(depth: int, fanout: int) -> int:
    total = 1
    level = 1
    for _ in range(depth):
        level *= fanout
        total += level
    return total


def bom_parts(depth: int, fanout: int = 2) -> List[str]:
    """Part names ``p0..pN`` of a complete ``fanout``-ary tree."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    return [f"p{i}" for i in range(_part_count(depth, fanout))]


def bom_subpart_edges(
    depth: int, fanout: int = 2
) -> List[Tuple[str, str]]:
    """Direct part-subpart edges, heap-numbered (root ``p0``)."""
    total = _part_count(depth, fanout)
    edges: List[Tuple[str, str]] = []
    for i in range(total):
        for c in range(fanout * i + 1, fanout * i + fanout + 1):
            if c >= total:
                break
            edges.append((f"p{i}", f"p{c}"))
    return edges


def bom_exceptions(
    depth: int,
    fanout: int = 2,
    exception_rate: float = 0.1,
    seed: int = 0,
) -> List[str]:
    """The exception list: each non-root part independently, seeded."""
    if not 0.0 <= exception_rate <= 1.0:
        raise ValueError("exception_rate must be within [0, 1]")
    rng = random.Random(seed)
    out = []
    for part in bom_parts(depth, fanout)[1:]:
        if rng.random() < exception_rate:
            out.append(part)
    return out


def bom_database(
    depth: int,
    fanout: int = 2,
    exception_rate: float = 0.1,
    seed: int = 0,
) -> Database:
    """``subpart`` / ``part`` / ``exception`` relations for one tree."""
    database = Database()
    database.add_values("subpart", bom_subpart_edges(depth, fanout))
    database.add_values(
        "part", [(p,) for p in bom_parts(depth, fanout)]
    )
    exceptions = bom_exceptions(depth, fanout, exception_rate, seed)
    if exceptions:
        database.add_values("exception", [(p,) for p in exceptions])
    return database


def bom_query(root: Optional[str] = None) -> Query:
    """``buildable(P)?``, or ``clean(root, S)?`` when a root is given."""
    if root is None:
        return parse_query("buildable(P)?")
    return parse_query(f"clean({root}, S)?")


def bom_source(
    depth: int,
    fanout: int = 2,
    exception_rate: float = 0.1,
    seed: int = 0,
    query: Optional[str] = None,
) -> str:
    """A complete ``.dl`` source: rules, generated facts, and a query."""
    lines = [
        "% bill of materials with exceptions "
        f"(depth={depth}, fanout={fanout}, "
        f"exception_rate={exception_rate}, seed={seed})",
        BOM.strip(),
        "",
    ]
    for src, dst in bom_subpart_edges(depth, fanout):
        lines.append(f"subpart({src}, {dst}).")
    for part in bom_parts(depth, fanout):
        lines.append(f"part({part}).")
    for part in bom_exceptions(depth, fanout, exception_rate, seed):
        lines.append(f"exception({part}).")
    lines.append("")
    lines.append(query if query is not None else "buildable(P)?")
    return "\n".join(lines) + "\n"
