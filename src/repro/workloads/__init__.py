"""Synthetic workload generators for tests, examples, and benchmarks."""

from .bom import (
    BOM,
    bom_database,
    bom_exceptions,
    bom_parts,
    bom_program,
    bom_query,
    bom_source,
    bom_subpart_edges,
)
from .graphs import (
    chain_database,
    chain_edges,
    cycle_database,
    cycle_edges,
    grid_edges,
    load_edges,
    random_dag_database,
    random_dag_edges,
    tree_database,
    tree_edges,
)
from .lists import constant_list, integer_list
from .programs import (
    ANCESTOR,
    LIST_REVERSE,
    NESTED_SAMEGEN,
    NONLINEAR_ANCESTOR,
    NONLINEAR_SAMEGEN,
    ancestor_program,
    ancestor_query,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
    synthetic_chain_database,
    synthetic_chain_program,
)
from .samegen import nested_samegen_database, samegen_database, samegen_edges

__all__ = [
    "BOM", "bom_database", "bom_exceptions", "bom_parts", "bom_program",
    "bom_query", "bom_source", "bom_subpart_edges",
    "chain_database", "chain_edges", "cycle_database", "cycle_edges",
    "grid_edges", "load_edges", "random_dag_database", "random_dag_edges",
    "tree_database", "tree_edges",
    "constant_list", "integer_list",
    "ANCESTOR", "LIST_REVERSE", "NESTED_SAMEGEN", "NONLINEAR_ANCESTOR",
    "NONLINEAR_SAMEGEN",
    "ancestor_program", "ancestor_query", "list_reverse_program",
    "nested_samegen_program", "nested_samegen_query",
    "nonlinear_ancestor_program", "nonlinear_samegen_program",
    "reverse_query", "samegen_query",
    "synthetic_chain_program", "synthetic_chain_database",
    "nested_samegen_database", "samegen_database", "samegen_edges",
]
