"""Graph workload generators for the ancestor family of benchmarks.

These populate the ``par`` (parenthood / edge) relation in the shapes the
recursive-query literature benchmarks on (Bancilhon & Ramakrishnan [5]):
chains, complete k-ary trees, random DAGs, and cyclic graphs.  Node names
are strings ``n0, n1, ...`` except trees, which use path-encoded names so
ancestry is visible by eye.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from ..datalog.database import Database

__all__ = [
    "chain_edges",
    "tree_edges",
    "random_dag_edges",
    "cycle_edges",
    "grid_edges",
    "load_edges",
    "chain_database",
    "tree_database",
    "random_dag_database",
    "cycle_database",
]


def chain_edges(length: int, prefix: str = "n") -> List[Tuple[str, str]]:
    """A simple path ``n0 -> n1 -> ... -> n(length)``."""
    return [(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(length)]


def tree_edges(
    depth: int, fanout: int = 2, root: str = "r"
) -> List[Tuple[str, str]]:
    """A complete ``fanout``-ary tree of the given depth, edges
    parent -> child.  Node names encode the path from the root."""
    edges: List[Tuple[str, str]] = []
    frontier = [root]
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            for child_index in range(fanout):
                child = f"{node}.{child_index}"
                edges.append((node, child))
                next_frontier.append(child)
        frontier = next_frontier
    return edges


def random_dag_edges(
    nodes: int,
    edge_probability: float = 0.1,
    seed: int = 0,
    prefix: str = "n",
) -> List[Tuple[str, str]]:
    """A random DAG: edge ``ni -> nj`` only for ``i < j`` (acyclic)."""
    rng = random.Random(seed)
    edges = []
    for i in range(nodes):
        for j in range(i + 1, nodes):
            if rng.random() < edge_probability:
                edges.append((f"{prefix}{i}", f"{prefix}{j}"))
    return edges


def cycle_edges(length: int, prefix: str = "n") -> List[Tuple[str, str]]:
    """A directed cycle of the given length (counting's nemesis)."""
    edges = chain_edges(length - 1, prefix)
    edges.append((f"{prefix}{length - 1}", f"{prefix}0"))
    return edges


def grid_edges(rows: int, cols: int) -> List[Tuple[str, str]]:
    """A rows x cols grid DAG with right and down edges."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((f"g{r}_{c}", f"g{r}_{c + 1}"))
            if r + 1 < rows:
                edges.append((f"g{r}_{c}", f"g{r + 1}_{c}"))
    return edges


def load_edges(
    edges: Iterable[Tuple[str, str]],
    relation: str = "par",
    database: Optional[Database] = None,
) -> Database:
    """Load (src, dst) pairs into a database relation."""
    if database is None:
        database = Database()
    database.add_values(relation, edges)
    return database


def chain_database(length: int, relation: str = "par") -> Database:
    return load_edges(chain_edges(length), relation)


def tree_database(
    depth: int, fanout: int = 2, relation: str = "par"
) -> Database:
    return load_edges(tree_edges(depth, fanout), relation)


def random_dag_database(
    nodes: int,
    edge_probability: float = 0.1,
    seed: int = 0,
    relation: str = "par",
) -> Database:
    return load_edges(
        random_dag_edges(nodes, edge_probability, seed), relation
    )


def cycle_database(length: int, relation: str = "par") -> Database:
    return load_edges(cycle_edges(length), relation)
