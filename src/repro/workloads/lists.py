"""List workloads for the list-reverse example (function symbols)."""

from __future__ import annotations

from typing import Sequence

from ..datalog.terms import Constant, Term, make_list

__all__ = ["constant_list", "integer_list"]


def constant_list(values: Sequence[object]) -> Term:
    """A ground Prolog-style list term from Python values."""
    return make_list([Constant(v) for v in values])


def integer_list(length: int) -> Term:
    """The list ``[0, 1, ..., length-1]`` as a ground term."""
    return constant_list(list(range(length)))
