"""Same-generation workloads: the ``up`` / ``flat`` / ``down`` relations.

The same-generation program (the paper's running example) is typically
benchmarked on layered data: ``up`` edges climb ``layers`` levels,
``flat`` edges move within the top layer, ``down`` edges descend.  A
query ``sg(x, Y)?`` then walks up from ``x``, across, and back down --
the classic "A-shaped" traversal.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..datalog.database import Database

__all__ = ["samegen_edges", "samegen_database", "nested_samegen_database"]


def samegen_edges(
    layers: int,
    width: int,
    flat_edges: int,
    seed: int = 0,
) -> Dict[str, List[Tuple[str, str]]]:
    """Layered up/flat/down data.

    Nodes are ``L{layer}_{i}`` for layer in ``0..layers`` (0 = bottom,
    where queries start) and ``i < width``.  ``up`` connects layer k to
    layer k+1 (two parents each, wrapping), ``down`` mirrors ``up``
    (independently wired, seeded), and ``flat`` adds ``flat_edges`` random edges
    inside the top layer.
    """
    rng = random.Random(seed)
    up: List[Tuple[str, str]] = []
    down: List[Tuple[str, str]] = []
    for layer in range(layers):
        for i in range(width):
            child = f"L{layer}_{i}"
            up.append((child, f"L{layer + 1}_{i}"))
            up.append((child, f"L{layer + 1}_{(i + 1) % width}"))
            down.append((f"L{layer + 1}_{i}", child))
            down.append(
                (f"L{layer + 1}_{(i + rng.randrange(width)) % width}", child)
            )
    flat: List[Tuple[str, str]] = []
    for layer in range(1, layers + 1):
        for _ in range(flat_edges):
            a = rng.randrange(width)
            b = rng.randrange(width)
            flat.append((f"L{layer}_{a}", f"L{layer}_{b}"))
    return {"up": up, "flat": flat, "down": down}


def samegen_database(
    layers: int,
    width: int,
    flat_edges: Optional[int] = None,
    seed: int = 0,
) -> Database:
    """A database with up/flat/down relations for same-generation runs."""
    if flat_edges is None:
        flat_edges = width
    edge_sets = samegen_edges(layers, width, flat_edges, seed)
    database = Database()
    for relation, edges in edge_sets.items():
        database.add_values(relation, edges)
    return database


def nested_samegen_database(
    layers: int,
    width: int,
    seed: int = 0,
) -> Database:
    """Data for the nested same-generation program (Appendix A.1(3)).

    Adds ``b1``/``b2`` base relations (the nested program's exit and
    descend relations) on top of the same-generation layers.
    """
    database = samegen_database(layers, width, seed=seed)
    rng = random.Random(seed + 1)
    b1 = []
    b2 = []
    for i in range(width):
        b1.append((f"L0_{i}", f"L0_{(i + 1) % width}"))
        b2.append((f"L0_{i}", f"L0_{rng.randrange(width)}"))
    database.add_values("b1", b1)
    database.add_values("b2", b2)
    return database
