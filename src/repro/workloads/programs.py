"""The paper's example programs (Appendix A.1), ready to import.

Each entry gives the program source and a query maker, so tests and
benchmarks reference the exact problems of the appendix:

1. ancestor (linear);
2. ancestor (nonlinear);
3. nested same-generation;
4. list reverse (function symbols).

The nonlinear same-generation program of Example 1 (the paper's running
example in the body text) is included as well.
"""

from __future__ import annotations


from ..datalog.ast import Literal, Program, Query
from ..datalog.parser import parse_program
from ..datalog.terms import Constant, Term, Variable

__all__ = [
    "ANCESTOR",
    "NONLINEAR_ANCESTOR",
    "NESTED_SAMEGEN",
    "NONLINEAR_SAMEGEN",
    "LIST_REVERSE",
    "ancestor_program",
    "nonlinear_ancestor_program",
    "nested_samegen_program",
    "nonlinear_samegen_program",
    "list_reverse_program",
    "ancestor_query",
    "samegen_query",
    "nested_samegen_query",
    "reverse_query",
    "synthetic_chain_program",
    "synthetic_chain_database",
]

ANCESTOR = """
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
"""

NONLINEAR_ANCESTOR = """
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
"""

NESTED_SAMEGEN = """
p(X, Y) :- b1(X, Y).
p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).
"""

NONLINEAR_SAMEGEN = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).
"""

LIST_REVERSE = """
append(V, [], [V]).
append(V, [W | X], [W | Y]) :- append(V, X, Y).
reverse([], []).
reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
"""


def ancestor_program() -> Program:
    return parse_program(ANCESTOR).program


def nonlinear_ancestor_program() -> Program:
    return parse_program(NONLINEAR_ANCESTOR).program


def nested_samegen_program() -> Program:
    return parse_program(NESTED_SAMEGEN).program


def nonlinear_samegen_program() -> Program:
    return parse_program(NONLINEAR_SAMEGEN).program


def list_reverse_program() -> Program:
    """The list-reverse program of Appendix A.1(4), unit rules included.

    The two exit rules have empty bodies (the paper writes
    ``append(V, [], V|[]) :-``); the parser files the ground one under
    facts, so the program is assembled explicitly here.
    """
    from ..datalog.ast import Rule
    from ..datalog.terms import EMPTY_LIST, Struct

    v, w, x, y, z = (Variable(n) for n in "VWXYZ")
    cons = lambda head, tail: Struct(".", (head, tail))
    return Program(
        (
            # append(V, [], [V]).
            Rule(Literal("append", (v, EMPTY_LIST, cons(v, EMPTY_LIST)))),
            # append(V, [W|X], [W|Y]) :- append(V, X, Y).
            Rule(
                Literal("append", (v, cons(w, x), cons(w, y))),
                (Literal("append", (v, x, y)),),
            ),
            # reverse([], []).
            Rule(Literal("reverse", (EMPTY_LIST, EMPTY_LIST))),
            # reverse([V|X], Y) :- reverse(X, Z), append(V, Z, Y).
            Rule(
                Literal("reverse", (cons(v, x), y)),
                (
                    Literal("reverse", (x, z)),
                    Literal("append", (v, z, y)),
                ),
            ),
        )
    )


def synthetic_chain_program(depth: int) -> Program:
    """A layered recursive program with ``depth`` derived predicates.

    ``p0`` calls ``p1`` calls ... calls ``p(depth-1)``, each layer also
    recursing on itself through an edge relation::

        p0(X, Y) :- e0(X, Y).
        p0(X, Y) :- e0(X, Z), p1(Z, Y).
        ...
        p(d-1)(X, Y) :- e(d-1)(X, Y).
        p(d-1)(X, Y) :- e(d-1)(X, Z), p(d-1)(Z, Y).

    Used by the rewrite-time scaling benchmark: the adorned program and
    every rewrite grow linearly with ``depth``.
    """
    from ..datalog.parser import parse_rule

    rules = []
    for i in range(depth):
        callee = i + 1 if i + 1 < depth else i
        rules.append(parse_rule(f"p{i}(X, Y) :- e{i}(X, Y)."))
        rules.append(
            parse_rule(f"p{i}(X, Y) :- e{i}(X, Z), p{callee}(Z, Y).")
        )
    return Program(tuple(rules))


def synthetic_chain_database(depth: int, length: int):
    """Edge relations for :func:`synthetic_chain_program`: each ``e_i``
    is a chain of the given length over shared nodes."""
    from ..datalog.database import Database

    db = Database()
    edges = [(f"n{j}", f"n{j + 1}") for j in range(length)]
    for i in range(depth):
        db.add_values(f"e{i}", edges)
    return db


def ancestor_query(person: str = "john") -> Query:
    return Query(Literal("anc", (Constant(person), Variable("Y"))))


def samegen_query(person: str) -> Query:
    return Query(Literal("sg", (Constant(person), Variable("Y"))))


def nested_samegen_query(person: str) -> Query:
    return Query(Literal("p", (Constant(person), Variable("Y"))))


def reverse_query(list_term: Term) -> Query:
    return Query(Literal("reverse", (list_term, Variable("Y"))))
