"""E11 -- the Section 11 discussion: relative merits of GMS/GSMS/GC/GSC.

Three regenerated claims:

1. GMS duplicates the joins of its magic rules inside the modified
   rules; GSMS stores them, so GSMS scans fewer tuples (at the price of
   extra supplementary facts).
2. When every fact has a unique derivation (tree data, linear rules),
   counting matches magic sets fact-for-fact after projecting the index
   fields, and the semijoin-optimized counting program does strictly
   less join work than magic sets.
3. On cyclic data the counting methods diverge while the magic methods
   terminate (also covered by E9; repeated here as part of the
   comparison table).

Plus the cross-strategy timing table: with the QSQ evaluator now
compiled (delta-driven subquery plans), top-down and bottom-up numbers
compare compiled-vs-compiled -- the gap measures the strategies, not
interpreter overhead.  ``QSQ_BENCH_DEPTH`` shrinks it for CI smoke.
"""

import os
import time


from repro import (
    NonTerminationError,
    Session,
    evaluate,
    rewrite,
    semijoin_optimize,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    nonlinear_samegen_program,
    samegen_database,
    samegen_query,
    tree_database,
)

from conftest import print_table


def test_gsms_does_less_join_work_than_gms(benchmark):
    query = samegen_query("L0_0")
    session = Session(
        program=nonlinear_samegen_program(),
        database=samegen_database(4, 6, flat_edges=10),
    )

    stats = {}
    for method in ("magic", "supplementary_magic"):
        answer = session.query(query, method=method, max_iterations=2000)
        stats[method] = answer.stats
    assert (
        stats["supplementary_magic"].tuples_scanned
        < stats["magic"].tuples_scanned
    )
    assert (
        stats["supplementary_magic"].facts_derived
        > stats["magic"].facts_derived
    ), "GSMS trades memory (supplementary facts) for join work"
    rows = [
        [m, s.facts_derived, s.rule_firings, s.tuples_scanned]
        for m, s in stats.items()
    ]
    print_table(
        "E11a GMS vs GSMS on nonlinear same-generation",
        ["method", "facts", "firings", "tuples scanned"],
        rows,
    )
    benchmark(
        lambda: Session(
            program=session.program, database=session.database
        ).query(query, method="supplementary_magic", max_iterations=2000)
    )


def test_counting_on_unique_derivations(benchmark):
    """Tree data + linear rules: unique derivations, counting applies;
    the semijoin-optimized program beats magic sets on join work."""
    program = ancestor_program()
    query = ancestor_query("r.0")
    db = tree_database(7)

    magic = rewrite(program, query, method="magic")
    magic_result = evaluate(magic.program, magic.seeded_database(db))

    optimized = semijoin_optimize(rewrite(program, query, method="counting"))
    counting_result = evaluate(
        optimized.program, optimized.seeded_database(db)
    )
    assert optimized.extract_answers(counting_result) == magic.extract_answers(
        magic_result
    )
    rows = [
        [
            "magic",
            magic_result.stats.facts_derived,
            magic_result.stats.tuples_scanned,
        ],
        [
            "counting+semijoin",
            counting_result.stats.facts_derived,
            counting_result.stats.tuples_scanned,
        ],
    ]
    print_table(
        "E11b magic vs semijoin-optimized counting (tree, unique "
        "derivations)",
        ["method", "facts", "tuples scanned"],
        rows,
    )
    assert (
        counting_result.stats.tuples_scanned
        < magic_result.stats.tuples_scanned
    )
    benchmark(
        lambda: evaluate(optimized.program, optimized.seeded_database(db))
    )


def test_cross_strategy_compiled_vs_compiled(benchmark):
    """Theorem 9.1's substrate check, timed: QSQ (top-down, compiled
    subquery plans) vs the rewrites (bottom-up, compiled join plans) vs
    plain semi-naive, all answering the same query identically; the
    legacy QSQ path is asserted equivalent so CI catches divergence."""
    depth = int(os.environ.get("QSQ_BENCH_DEPTH", "80"))
    query = ancestor_query("n0")
    session = Session(
        program=ancestor_program(), database=chain_database(depth)
    )

    timings = {}
    answers = {}
    for method in ("qsq", "magic", "supplementary_magic", "seminaive"):
        t0 = time.perf_counter()
        result = session.query(query, method=method)
        timings[method] = time.perf_counter() - t0
        answers[method] = result.rows
    legacy_qsq = session.query(query, method="qsq", use_planner=False)
    assert legacy_qsq.rows == answers["qsq"]
    baseline = answers["qsq"]
    for method, got in answers.items():
        assert got == baseline, f"{method} diverged from qsq"
    print_table(
        f"cross-strategy, compiled-vs-compiled (ancestor, chain {depth})",
        ["strategy", "answers", "seconds"],
        [
            [m, len(answers[m]), f"{timings[m]:.4f}"]
            for m in timings
        ],
    )
    # fresh session per iteration: the memo would otherwise turn the
    # benchmark into a dictionary-lookup measurement
    benchmark(
        lambda: Session(
            program=session.program, database=session.database
        ).query(query, method="qsq")
    )


def test_counting_diverges_where_magic_terminates(benchmark):
    program = ancestor_program()
    query = ancestor_query("n0")
    db = cycle_database(5)

    def run():
        magic = rewrite(program, query, method="magic")
        evaluate(magic.program, magic.seeded_database(db))
        counting = rewrite(program, query, method="counting")
        try:
            evaluate(
                counting.program,
                counting.seeded_database(db),
                max_iterations=150,
            )
        except NonTerminationError:
            return "diverged"
        return "terminated"

    outcome = benchmark(run)
    assert outcome == "diverged"
    print_table(
        "E11c cyclic data",
        ["method", "outcome"],
        [["magic", "terminated"], ["counting", outcome]],
    )
