"""Rewrite-time scaling: the transformations are compile-time program
rewrites and must scale with program size.

Measures adornment + rewrite time over synthetic layered programs of
growing depth (2·depth rules) and asserts the output sizes grow
linearly (each source rule yields a bounded number of rewritten rules).
Also checks end-to-end answers against the baseline once per size.
"""

import pytest

from repro import adorn_program, bottom_up_answer, evaluate, rewrite
from repro.datalog.ast import Literal, Query
from repro.datalog.terms import Constant, Variable
from repro.workloads import synthetic_chain_database, synthetic_chain_program

from conftest import print_table

DEPTHS = [4, 16, 64]


def chain_query():
    return Query(Literal("p0", (Constant("n0"), Variable("Y"))))


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize(
    "method", ["magic", "supplementary_magic", "counting"]
)
def test_rewrite_scales_linearly(benchmark, depth, method):
    program = synthetic_chain_program(depth)
    query = chain_query()
    rewritten = benchmark(lambda: rewrite(program, query, method=method))
    # bounded blow-up: each adorned rule yields at most 4 rewritten rules
    adorned = adorn_program(program, query)
    assert len(rewritten.rules) <= 4 * len(adorned.rules)
    print_table(
        f"rewrite scaling: depth={depth}, method={method}",
        ["source rules", "adorned rules", "rewritten rules"],
        [[len(program), len(adorned), len(rewritten.rules)]],
    )


@pytest.mark.parametrize("depth", [4, 16])
def test_rewritten_program_answers_match(benchmark, depth):
    program = synthetic_chain_program(depth)
    query = chain_query()
    db = synthetic_chain_database(depth, length=12)
    baseline = bottom_up_answer(program, db, query)
    rewritten = rewrite(program, query, method="supplementary_magic")

    def run():
        result = evaluate(rewritten.program, rewritten.seeded_database(db))
        return rewritten.extract_answers(result)

    answers = benchmark(run)
    assert answers == baseline.answers
