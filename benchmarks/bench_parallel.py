"""Parallel evaluation tier: sharded worker pool vs serial fixpoint.

Two workloads drive the grid, each over ``workers`` in {1, 2, 4}:

* transitive closure over a braid of disjoint chains sized by
  ``PARALLEL_BENCH_FACTS`` base facts (default 10^6) -- the delta rows
  hash-shard perfectly, so this measures the pool's best case;
* the stratified bill-of-materials workload (recursion + negation
  across strata), whose mixed rule shapes exercise chunk sharding and
  visibility groups.

Every cell asserts *answer-set identity* (frozen ID rows per derived
relation) and *work-counter identity* against the serial run -- those
assertions always run.  The >= 2.5x wall-clock gate at 4 workers is
armed only when the host can physically deliver it: it requires
``os.cpu_count() >= 4`` and ``BENCH_TIMING_STRICT != 0``.  On smaller
hosts (CI runners, the 1-CPU container this repo is often grown in)
the grid still runs and the JSON still records the honest numbers --
fork serialization overhead makes workers *slower* than serial there,
which is exactly what the ``ship_seconds`` column is for.

Set ``PARALLEL_BENCH_FACTS`` to shrink the workload (CI smoke uses
20000).
"""

import os
import time

import pytest

from repro import evaluate, parse_program
from repro.workloads import bom_database, bom_program, load_edges

from conftest import print_table, record_bench

FACTS = int(os.environ.get("PARALLEL_BENCH_FACTS", "1000000"))
WORKER_GRID = [1, 2, 4]
MIN_PARALLEL_SPEEDUP = 2.5
HOST_CPUS = os.cpu_count() or 1
TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
#: the speedup gate only makes sense with >= 4 cores to run 4 workers on
GATE_ARMED = TIMING_STRICT and HOST_CPUS >= 4

TC = """
    anc(X, Y) :- par(X, Y).
    anc(X, Z) :- par(X, Y), anc(Y, Z).
"""

BOM_DEPTH = 14 if FACTS >= 500_000 else (12 if FACTS >= 50_000 else 9)


def braid_edges(n_edges, depth=4):
    """Disjoint chains of ``depth`` edges: TC output stays linear in the
    input (depth*(depth+1)/2 ancestor pairs per chain), so the workload
    scales to 10^6+ base facts without a quadratic closure."""
    chains = max(1, n_edges // depth)
    edges = []
    for c in range(chains):
        for j in range(depth):
            edges.append((f"c{c}n{j}", f"c{c}n{j + 1}"))
    return edges


def _snapshot(result):
    out = {}
    for key in sorted(result.derived_keys):
        rel = result.database.get(key)
        out[key] = (
            frozenset(rel.id_rows()) if rel is not None else frozenset()
        )
    return out


def _counters(stats):
    return (
        stats.facts_derived,
        stats.rule_firings,
        stats.duplicate_derivations,
        stats.iterations,
    )


def _balance(stats):
    """min/max rows across workers; 1.0 = perfectly even shards."""
    rows = list(stats.parallel_worker_rows.values())
    if not rows or max(rows) == 0:
        return 1.0
    return min(rows) / max(rows)


def _grid(program, database, title):
    rows = []
    baseline = None
    base_snapshot = None
    serial_seconds = None
    for workers in WORKER_GRID:
        kwargs = {"workers": workers} if workers > 1 else {}
        t0 = time.perf_counter()
        result = evaluate(program, database, method="seminaive", **kwargs)
        seconds = time.perf_counter() - t0
        if workers == 1:
            baseline = result
            base_snapshot = _snapshot(result)
            serial_seconds = seconds
        else:
            # the whole point: identical answers and identical work
            assert _snapshot(result) == base_snapshot, workers
            assert _counters(result.stats) == _counters(baseline.stats)
        speedup = serial_seconds / seconds if seconds else float("inf")
        rows.append(
            [
                workers,
                result.stats.parallel_backend or "serial",
                f"{seconds:.2f}",
                f"{speedup:.2f}x",
                f"{_balance(result.stats):.2f}",
                f"{result.stats.parallel_ship_seconds:.2f}",
                result.stats.parallel_rows_shipped,
            ]
        )
        record_bench(
            {
                "workload": title,
                "workers": workers,
                "backend": result.stats.parallel_backend or "serial",
                "host_cpus": HOST_CPUS,
                "gate_armed": GATE_ARMED,
                "base_facts": database.total_facts(),
                "facts_derived": result.stats.facts_derived,
                "seconds": round(seconds, 4),
                "speedup_vs_serial": round(speedup, 4),
                "shard_balance": round(_balance(result.stats), 4),
                "ship_seconds": round(
                    result.stats.parallel_ship_seconds, 4
                ),
                "rows_shipped": result.stats.parallel_rows_shipped,
                "parallel_tasks": result.stats.parallel_tasks,
                "answers_identical": True,
            }
        )
    print_table(
        f"{title} (host_cpus={HOST_CPUS}, gate_armed={GATE_ARMED})",
        [
            "workers",
            "backend",
            "seconds",
            "speedup",
            "balance",
            "ship_s",
            "rows_shipped",
        ],
        rows,
    )
    if GATE_ARMED:
        at4 = float(rows[-1][3].rstrip("x"))
        assert at4 >= MIN_PARALLEL_SPEEDUP, (
            f"{title}: expected >= {MIN_PARALLEL_SPEEDUP}x at 4 workers "
            f"on a {HOST_CPUS}-cpu host, measured {at4:.2f}x"
        )


def test_tc_braid_worker_grid():
    """Transitive closure at PARALLEL_BENCH_FACTS base facts: the delta
    relation hash-shards on the join column, so each worker probes a
    disjoint slice of the braid."""
    program = parse_program(TC).program
    database = load_edges(braid_edges(FACTS))
    _grid(program, database, f"parallel TC braid, {FACTS} edges")


def test_bom_stratified_worker_grid():
    """Stratified BOM (recursion + negation): mixed shard modes, and the
    stratum barrier forces the pool through multiple fixpoints."""
    program = bom_program()
    database = bom_database(BOM_DEPTH, 2, 0.1, 7)
    _grid(
        program,
        database,
        f"parallel BOM depth={BOM_DEPTH}",
    )


def test_shard_balance_is_even_on_hash_sharded_tc():
    """The Fibonacci-mix shard hash spreads delta rows evenly: at the
    bench scale every worker sees within 2x of every other (machine
    independent -- this is a property of the hash, not the clock)."""
    program = parse_program(TC).program
    database = load_edges(braid_edges(min(FACTS, 100_000)))
    result = evaluate(program, database, method="seminaive", workers=4)
    assert len(result.stats.parallel_worker_rows) == 4
    assert _balance(result.stats) >= 0.5
    record_bench(
        {
            "workload": "shard balance, hash-sharded TC",
            "workers": 4,
            "shard_balance": round(_balance(result.stats), 4),
            "worker_rows": {
                str(w): n
                for w, n in sorted(
                    result.stats.parallel_worker_rows.items()
                )
            },
        }
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_serialization_overhead_is_accounted(workers):
    """ship_seconds and rows_shipped expose what the fork backend pays
    to move delta buffers: the bench records it so a regression in the
    one-shot catalog export or the array packing shows up as a number,
    not a vibe."""
    program = parse_program(TC).program
    database = load_edges(braid_edges(min(FACTS, 50_000)))
    result = evaluate(
        program, database, method="seminaive", workers=workers
    )
    stats = result.stats
    if stats.parallel_backend == "fork":
        assert stats.parallel_rows_shipped > 0
        assert stats.parallel_ship_seconds >= 0.0
    record_bench(
        {
            "workload": "serialization overhead",
            "workers": workers,
            "backend": stats.parallel_backend,
            "rows_shipped": stats.parallel_rows_shipped,
            "ship_seconds": round(stats.parallel_ship_seconds, 4),
        }
    )
