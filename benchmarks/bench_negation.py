"""Stratified negation on the bill-of-materials workload family.

Not a paper artifact: the paper's programs are positive.  This bench
pins down the stratified-negation subsystem instead -- the BOM program
(4 strata, 3 negations, recursive explosion below the negations) runs
through all four bottom-up configurations:

* naive / legacy join      -- the stratum-wise naive reference oracle
  (no planner, no deltas: just each stratum to its fixpoint in rounds);
* naive / compiled plans   -- anti-join steps, same fixpoint;
* semi-naive / legacy join -- per-stratum deltas, interpretive join;
* semi-naive / compiled    -- the default production path.

All four must derive identical relations for every stratum; the bench
asserts that (the correctness oracle) and reports per-engine wall
clocks.  ``BOM_BENCH_DEPTH`` / ``BOM_BENCH_FANOUT`` / ``BOM_BENCH_RATE``
shrink or grow the part tree; the wall-clock gate (semi-naive compiled
beats the naive reference) only arms at depth >= 8 and honors
``BENCH_TIMING_STRICT=0`` for noisy CI runners.
"""

import os
import time

from repro import evaluate
from repro.workloads import bom_database, bom_program

from conftest import print_table, record_bench

DEPTH = int(os.environ.get("BOM_BENCH_DEPTH", "9"))
FANOUT = int(os.environ.get("BOM_BENCH_FANOUT", "2"))
RATE = float(os.environ.get("BOM_BENCH_RATE", "0.08"))
SEED = int(os.environ.get("BOM_BENCH_SEED", "0"))
MIN_SPEEDUP = 1.5

DERIVED = ("component", "tainted", "clean", "blocked", "buildable")

ENGINES = (
    ("naive-legacy", "naive", False),
    ("naive-compiled", "naive", True),
    ("seminaive-legacy", "seminaive", False),
    ("seminaive-compiled", "seminaive", True),
)


def run_all(database, program):
    """Evaluate every engine configuration; return per-engine results."""
    out = []
    for label, method, use_planner in ENGINES:
        start = time.perf_counter()
        result = evaluate(
            program, database, method=method, use_planner=use_planner
        )
        seconds = time.perf_counter() - start
        out.append((label, result, seconds))
    return out


def assert_oracle_agreement(runs):
    """Every engine must match the stratum-wise naive reference."""
    oracle_label, oracle, _ = runs[0]
    assert oracle_label == "naive-legacy"
    for label, result, _ in runs[1:]:
        for pred in DERIVED:
            assert result.database.tuples(pred) == oracle.database.tuples(
                pred
            ), f"{label} disagrees with {oracle_label} on {pred}"


def test_bom_engines_agree(benchmark):
    """Four engine configurations, one answer; compiled semi-naive wins."""
    program = bom_program()
    database = bom_database(DEPTH, FANOUT, RATE, SEED)
    runs = run_all(database, program)
    assert_oracle_agreement(runs)

    oracle = runs[0][1]
    counts = {pred: len(oracle.database.tuples(pred)) for pred in DERIVED}
    assert counts["component"] > 0
    # the negation actually bites: clean is a strict subset on any
    # seed that produced at least one exception
    if len(oracle.database.tuples("exception")) > 0:
        assert counts["clean"] < counts["component"]

    seconds = {label: s for label, _, s in runs}
    record_bench(
        {
            "workload": {
                "family": "bom",
                "depth": DEPTH,
                "fanout": FANOUT,
                "exception_rate": RATE,
                "seed": SEED,
            },
            "tuple_counts": dict(
                counts,
                subpart=len(database.tuples("subpart")),
                exception=len(database.tuples("exception")),
            ),
            "wall_clock_seconds": {
                label: round(s, 6) for label, s in seconds.items()
            },
        }
    )
    print_table(
        f"stratified BOM: depth={DEPTH} fanout={FANOUT} rate={RATE}",
        ["engine", "facts", "iterations", "probes", "seconds"],
        [
            [
                label,
                result.stats.facts_derived,
                result.stats.iterations,
                result.stats.join_probes,
                f"{s:.3f}",
            ]
            for label, result, s in runs
        ],
    )

    strict = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
    if strict and DEPTH >= 8:
        speedup = seconds["naive-legacy"] / max(
            seconds["seminaive-compiled"], 1e-9
        )
        assert speedup >= MIN_SPEEDUP, (
            f"compiled semi-naive only {speedup:.1f}x faster than the "
            f"naive reference at depth {DEPTH}"
        )
    benchmark(
        lambda: evaluate(
            program, database, method="seminaive", use_planner=True
        )
    )


def test_exception_rate_monotonicity(benchmark):
    """More exceptions: tainted grows, clean and buildable shrink.

    With one seed the RNG draws are identical across rates, so a higher
    threshold yields a superset of exceptions -- making the derived
    relations provably monotone in the rate.  This is a pure-semantics
    check on the anti-joins; timing is incidental.
    """
    program = bom_program()
    depth = min(DEPTH, 6)
    rows = []
    previous = None
    for rate in (0.0, 0.1, 0.3):
        database = bom_database(depth, FANOUT, rate, SEED)
        result = evaluate(program, database, method="seminaive")
        counts = {
            pred: len(result.database.tuples(pred)) for pred in DERIVED
        }
        counts["exception"] = len(database.tuples("exception"))
        rows.append(
            [rate, counts["exception"], counts["tainted"],
             counts["clean"], counts["buildable"]]
        )
        if rate == 0.0:
            # negation-free baseline: nothing tainted, nothing blocked
            assert counts["tainted"] == 0
            assert counts["clean"] == counts["component"]
            assert counts["blocked"] == 0
            assert counts["buildable"] == len(database.tuples("part"))
        if previous is not None:
            assert counts["tainted"] >= previous["tainted"]
            assert counts["clean"] <= previous["clean"]
            assert counts["buildable"] <= previous["buildable"]
        previous = counts
    print_table(
        f"exception-rate sweep: depth={depth} fanout={FANOUT}",
        ["rate", "exceptions", "tainted", "clean", "buildable"],
        rows,
    )
    database = bom_database(depth, FANOUT, 0.1, SEED)
    benchmark(lambda: evaluate(program, database, method="seminaive"))
