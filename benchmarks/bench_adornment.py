"""E1 -- Appendix A.2: regenerate the adorned rule sets.

The artifact is the adorned program itself; the benchmark times the
adornment construction and asserts the rule sets match the paper
(structurally, via the same canonical comparison the tests use).
"""

import pytest

from repro import adorn_program
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    reverse_query,
)

from conftest import canonical_rules, print_table

CASES = {
    "ancestor": (
        ancestor_program,
        lambda: ancestor_query("john"),
        [
            "anc^bf(A, B) :- par(A, B).",
            "anc^bf(A, B) :- par(A, C), anc^bf(C, B).",
        ],
    ),
    "nonlinear_ancestor": (
        nonlinear_ancestor_program,
        lambda: ancestor_query("john"),
        [
            "anc^bf(A, B) :- anc^bf(A, C), anc^bf(C, B).",
            "anc^bf(A, B) :- par(A, B).",
        ],
    ),
    "nested_samegen": (
        nested_samegen_program,
        lambda: nested_samegen_query("john"),
        [
            "p^bf(A, B) :- b1(A, B).",
            "p^bf(A, B) :- sg^bf(A, C), p^bf(C, D), b2(D, B).",
            "sg^bf(A, B) :- flat(A, B).",
            "sg^bf(A, B) :- up(A, C), sg^bf(C, D), down(D, B).",
        ],
    ),
    "list_reverse": (
        list_reverse_program,
        lambda: reverse_query(integer_list(2)),
        [
            "append^bbf(A, [B | C], [B | D]) :- append^bbf(A, C, D).",
            "append^bbf(A, [], [A]).",
            "reverse^bf([A | B], C) :- reverse^bf(B, D), append^bbf(A, D, C).",
            "reverse^bf([], []).",
        ],
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_adornment_matches_paper(benchmark, name):
    program_maker, query_maker, expected = CASES[name]
    program, query = program_maker(), query_maker()
    adorned = benchmark(lambda: adorn_program(program, query))
    assert canonical_rules(adorned) == sorted(expected)
    print_table(
        f"A.2 adorned rules: {name}",
        ["rule"],
        [[rule] for rule in canonical_rules(adorned)],
    )
