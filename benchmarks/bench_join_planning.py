"""Join-plan compiler ablation: legacy interpretive joins vs compiled plans.

Not a paper artifact: the paper measures rewriting strategies by facts
computed, and both execution paths derive the *same* facts (asserted
here).  What the planner changes is the substrate cost per fact -- the
ROADMAP's "fast as the hardware allows" axis: delta-first join orders,
up-front index registration, and slot frames instead of per-row dict
substitutions.  ``tuples_scanned`` is the machine-independent proxy
(rows touched while extending partial matches); wall-clock is timed via
pytest-benchmark on the planner path.
"""

import time

import pytest

from repro import evaluate_seminaive
from repro.workloads import (
    ancestor_program,
    chain_database,
    nonlinear_samegen_program,
    samegen_database,
)

from conftest import print_table

DEPTHS = [100, 200]


def run_both(program, db):
    t0 = time.perf_counter()
    legacy = evaluate_seminaive(program, db, use_planner=False)
    t1 = time.perf_counter()
    planned = evaluate_seminaive(program, db, use_planner=True)
    t2 = time.perf_counter()
    return legacy, planned, t1 - t0, t2 - t1


def assert_equivalent_but_cheaper(legacy, planned, pred_key):
    assert planned.derived_tuples(pred_key) == legacy.derived_tuples(pred_key)
    assert planned.stats.facts_derived == legacy.stats.facts_derived
    assert planned.stats.rule_firings == legacy.stats.rule_firings
    # the planner's whole point: strictly fewer rows touched
    assert planned.stats.tuples_scanned < legacy.stats.tuples_scanned


@pytest.mark.parametrize("depth", DEPTHS)
def test_ancestor_chain_planning(benchmark, depth):
    """Linear ancestor on a chain: the legacy path rescans ``par`` fully
    every round; the delta-first plan probes it through the index."""
    program = ancestor_program()
    db = chain_database(depth)
    legacy, planned, legacy_s, planned_s = run_both(program, db)
    assert_equivalent_but_cheaper(legacy, planned, "anc")
    print_table(
        f"join planning: ancestor on chain {depth}",
        ["path", "facts", "tuples_scanned", "join_probes", "seconds"],
        [
            ["legacy", legacy.stats.facts_derived,
             legacy.stats.tuples_scanned, legacy.stats.join_probes,
             f"{legacy_s:.3f}"],
            ["planner", planned.stats.facts_derived,
             planned.stats.tuples_scanned, planned.stats.join_probes,
             f"{planned_s:.3f}"],
        ],
    )
    benchmark(lambda: evaluate_seminaive(program, db))


@pytest.mark.parametrize("layers", [100])
def test_samegen_layers_planning(benchmark, layers):
    """Nonlinear same-generation on layered data at depth >= 100."""
    program = nonlinear_samegen_program()
    db = samegen_database(layers=layers, width=3, flat_edges=2)
    legacy, planned, legacy_s, planned_s = run_both(program, db)
    assert_equivalent_but_cheaper(legacy, planned, "sg")
    print_table(
        f"join planning: same-generation, {layers} layers",
        ["path", "facts", "tuples_scanned", "join_probes", "seconds"],
        [
            ["legacy", legacy.stats.facts_derived,
             legacy.stats.tuples_scanned, legacy.stats.join_probes,
             f"{legacy_s:.3f}"],
            ["planner", planned.stats.facts_derived,
             planned.stats.tuples_scanned, planned.stats.join_probes,
             f"{planned_s:.3f}"],
        ],
    )
    benchmark(lambda: evaluate_seminaive(program, db))


def test_naive_also_benefits(benchmark):
    """Naive evaluation reuses the same full plans each round.

    With no delta to reorder around, the ancestor plan's join order
    matches the legacy left-to-right order, so ``tuples_scanned`` ties;
    the win here is the slot frames (no per-row dict copies), which
    shows up in the timed run only.
    """
    from repro import evaluate_naive

    program = ancestor_program()
    db = chain_database(60)
    legacy = evaluate_naive(program, db, use_planner=False)
    planned = evaluate_naive(program, db, use_planner=True)
    assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
    assert planned.stats.facts_derived == legacy.stats.facts_derived
    assert planned.stats.tuples_scanned <= legacy.stats.tuples_scanned
    benchmark(lambda: evaluate_naive(program, db))
