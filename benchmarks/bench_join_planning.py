"""Join-execution ablation: legacy interpretive joins vs compiled plans
vs batch-vectorized columnar execution.

Not a paper artifact: the paper measures rewriting strategies by facts
computed, and all three execution paths derive the *same* facts
(asserted here).  What they change is the substrate cost per fact -- the
ROADMAP's "fast as the hardware allows" axis:

* **legacy** (``use_planner=False``): per-row dict substitutions,
  join strategy re-derived per candidate row;
* **row-compiled** (``use_planner=True, vectorized=False``): compiled
  :class:`JoinPlan` slot frames, one index probe per frame;
* **batch** (the default): columns of interned term IDs, one index
  probe per *distinct* key in the batch, column-at-a-time emission.

``tuples_scanned`` is the machine-independent proxy (rows touched while
extending partial matches); wall-clock is timed via pytest-benchmark on
the batch path.  The batch-vs-row-compiled speedup is gated at >= 5x
for depth >= 100 workloads (``BENCH_TIMING_STRICT=0`` disarms the
wall-clock gate on noisy shared runners; the content equality and
stats-parity assertions always run).
"""

import os
import time

import pytest

from repro import evaluate_seminaive
from repro.workloads import (
    ancestor_program,
    chain_database,
    nonlinear_samegen_program,
    samegen_database,
)

from conftest import print_table, record_bench

DEPTHS = [100, 200]
MIN_BATCH_SPEEDUP = 5.0
TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"


def _best_of(fn, reps=5):
    fn()  # warm-up: term interning, indexes, allocator steady state
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def run_three(program, db):
    """One legacy run, best-of-5 for the compiled pair (they are the
    gated comparison and individually fast enough to be noisy)."""
    t0 = time.perf_counter()
    legacy = evaluate_seminaive(program, db, use_planner=False)
    legacy_s = time.perf_counter() - t0
    row, row_s = _best_of(
        lambda: evaluate_seminaive(program, db, vectorized=False)
    )
    batch, batch_s = _best_of(
        lambda: evaluate_seminaive(program, db, vectorized=True)
    )
    return legacy, row, batch, legacy_s, row_s, batch_s


def assert_equivalent_but_cheaper(legacy, row, batch, pred_key):
    for planned in (row, batch):
        assert planned.derived_tuples(pred_key) == legacy.derived_tuples(
            pred_key
        )
        assert planned.stats.facts_derived == legacy.stats.facts_derived
        assert planned.stats.rule_firings == legacy.stats.rule_firings
        # the planner's whole point: strictly fewer rows touched
        assert planned.stats.tuples_scanned < legacy.stats.tuples_scanned
    # batching's whole point: fewer probes (one per distinct key)
    assert batch.stats.join_probes <= row.stats.join_probes


def report_and_gate(title, depth, legacy, row, batch, legacy_s, row_s,
                    batch_s):
    speedup = row_s / batch_s if batch_s > 0 else float("inf")
    print_table(
        title,
        ["path", "facts", "tuples_scanned", "join_probes", "seconds"],
        [
            ["legacy", legacy.stats.facts_derived,
             legacy.stats.tuples_scanned, legacy.stats.join_probes,
             f"{legacy_s:.3f}"],
            ["row-compiled", row.stats.facts_derived,
             row.stats.tuples_scanned, row.stats.join_probes,
             f"{row_s:.3f}"],
            ["batch", batch.stats.facts_derived,
             batch.stats.tuples_scanned, batch.stats.join_probes,
             f"{batch_s:.3f}"],
            ["batch vs row", "", "", "", f"{speedup:.1f}x"],
        ],
    )
    record_bench({
        "workload": title,
        "depth": depth,
        "legacy_s": legacy_s,
        "row_compiled_s": row_s,
        "batch_s": batch_s,
        "batch_vs_row_speedup": speedup,
        "facts": batch.stats.facts_derived,
    })
    if depth >= 100 and TIMING_STRICT:
        assert speedup >= MIN_BATCH_SPEEDUP, (
            f"batch execution only {speedup:.1f}x faster than the "
            f"row-compiled path at depth {depth} "
            f"(need >= {MIN_BATCH_SPEEDUP}x)"
        )


@pytest.mark.parametrize("depth", DEPTHS)
def test_ancestor_chain_planning(benchmark, depth):
    """Linear ancestor on a chain: the legacy path rescans ``par`` fully
    every round; the delta-first plan probes it through the index; the
    batch path pushes whole delta columns through those probes."""
    program = ancestor_program()
    db = chain_database(depth)
    legacy, row, batch, legacy_s, row_s, batch_s = run_three(program, db)
    assert_equivalent_but_cheaper(legacy, row, batch, "anc")
    report_and_gate(
        f"join execution: ancestor on chain {depth}", depth,
        legacy, row, batch, legacy_s, row_s, batch_s,
    )
    benchmark(lambda: evaluate_seminaive(program, db))


@pytest.mark.parametrize("layers", [100])
def test_samegen_layers_planning(benchmark, layers):
    """Nonlinear same-generation on layered data at depth >= 100."""
    program = nonlinear_samegen_program()
    db = samegen_database(layers=layers, width=3, flat_edges=2)
    legacy, row, batch, legacy_s, row_s, batch_s = run_three(program, db)
    assert_equivalent_but_cheaper(legacy, row, batch, "sg")
    report_and_gate(
        f"join execution: same-generation, {layers} layers", layers,
        legacy, row, batch, legacy_s, row_s, batch_s,
    )
    benchmark(lambda: evaluate_seminaive(program, db))


def test_naive_also_benefits(benchmark):
    """Naive evaluation reuses the same full plans each round.

    With no delta to reorder around, the ancestor plan's join order
    matches the legacy left-to-right order, so ``tuples_scanned`` ties;
    the win here is the slot frames and ID columns (no per-row dict
    copies), which shows up in the timed run only.
    """
    from repro import evaluate_naive

    program = ancestor_program()
    db = chain_database(60)
    legacy = evaluate_naive(program, db, use_planner=False)
    for vectorized in (False, True):
        planned = evaluate_naive(program, db, vectorized=vectorized)
        assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
        assert planned.stats.facts_derived == legacy.stats.facts_derived
        assert planned.stats.tuples_scanned <= legacy.stats.tuples_scanned
    benchmark(lambda: evaluate_naive(program, db))
