"""E3 -- Appendix A.4: regenerate the four GSMS rewrites."""

import pytest

from repro import rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    reverse_query,
)

from conftest import canonical_rules, print_table

EXPECTED = {
    "ancestor": [
        "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
        "anc^bf(A, B) :- supmagic2_2(A, C), anc^bf(C, B).",
        "magic_anc_bf(A) :- supmagic2_2(B, A).",
        "supmagic2_2(A, B) :- magic_anc_bf(A), par(A, B).",
    ],
    "nonlinear_ancestor": [
        "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
        "anc^bf(A, B) :- supmagic2_2(A, C), anc^bf(C, B).",
        "magic_anc_bf(A) :- supmagic2_2(B, A).",
        "supmagic2_2(A, B) :- magic_anc_bf(A), anc^bf(A, B).",
    ],
    "nested_samegen": [
        "magic_p_bf(A) :- supmagic2_2(B, A).",
        "magic_sg_bf(A) :- magic_p_bf(A).",
        "magic_sg_bf(A) :- supmagic4_2(B, A).",
        "p^bf(A, B) :- magic_p_bf(A), b1(A, B).",
        "p^bf(A, B) :- supmagic2_2(A, C), p^bf(C, D), b2(D, B).",
        "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
        "sg^bf(A, B) :- supmagic4_2(A, C), sg^bf(C, D), down(D, B).",
        "supmagic2_2(A, B) :- magic_p_bf(A), sg^bf(A, B).",
        "supmagic4_2(A, B) :- magic_sg_bf(A), up(A, B).",
    ],
    "list_reverse": [
        "append^bbf(A, [B | C], [B | D]) :- magic_append_bbf(A, [B | C]), "
        "append^bbf(A, C, D).",
        "append^bbf(A, [], [A]) :- magic_append_bbf(A, []).",
        "magic_append_bbf(A, B) :- magic_append_bbf(A, [C | B]).",
        "magic_append_bbf(A, B) :- supmagic2_2(A, C, B).",
        "magic_reverse_bf(A) :- magic_reverse_bf([B | A]).",
        "reverse^bf([A | B], C) :- supmagic2_2(A, B, D), append^bbf(A, D, C).",
        "reverse^bf([], []) :- magic_reverse_bf([]).",
        "supmagic2_2(A, B, C) :- magic_reverse_bf([A | B]), reverse^bf(B, C).",
    ],
}

CASES = {
    "ancestor": (ancestor_program, lambda: ancestor_query("john")),
    "nonlinear_ancestor": (
        nonlinear_ancestor_program,
        lambda: ancestor_query("john"),
    ),
    "nested_samegen": (
        nested_samegen_program,
        lambda: nested_samegen_query("john"),
    ),
    "list_reverse": (
        list_reverse_program,
        lambda: reverse_query(integer_list(2)),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_gsms_rewrite_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    rewritten = benchmark(
        lambda: rewrite(program, query, method="supplementary_magic")
    )
    assert canonical_rules(rewritten) == sorted(EXPECTED[name])
    print_table(
        f"A.4 GSMS rewrite: {name}",
        ["rule"],
        [[rule] for rule in canonical_rules(rewritten)],
    )
