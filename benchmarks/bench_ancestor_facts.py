"""E6 -- the Section 1 claim: bottom-up computes the complete relation,
the rewritten programs compute only the query's cone.

Regenerates a fact-count table over chain / tree / random-DAG parenthood
relations.  Shape assertions: every method agrees with the baseline, and
on a selective query the magic methods derive strictly fewer facts than
full bottom-up evaluation.
"""

import pytest

from repro import Session
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    random_dag_database,
    tree_database,
)

from conftest import print_table

WORKLOADS = {
    "chain_60": (lambda: chain_database(60), "n30"),
    "tree_d6": (lambda: tree_database(6), "r.0.0"),
    "dag_60": (lambda: random_dag_database(60, 0.08, seed=13), "n20"),
}

METHODS = ("naive", "seminaive", "magic", "supplementary_magic", "qsq")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fact_counts(benchmark, workload):
    db_maker, root = WORKLOADS[workload]
    query = ancestor_query(root)
    session = Session(program=ancestor_program(), database=db_maker())

    baseline = session.query(query, method="naive")
    rows = [["naive", len(baseline.rows), baseline.stats.facts_derived]]
    results = {"naive": baseline}
    for method in ("seminaive", "magic", "supplementary_magic", "qsq"):
        answer = session.query(query, method=method)
        results[method] = answer
        facts = answer.stats.facts_derived if answer.stats else "-"
        rows.append([method, len(answer.rows), facts])
        assert answer.rows == baseline.rows, method

    # the headline shape: magic derives fewer facts than full bottom-up
    assert (
        results["magic"].stats.facts_derived
        < baseline.stats.facts_derived
    )
    print_table(
        f"E6 fact counts: ancestor on {workload}, query root={root}",
        ["strategy", "answers", "facts derived"],
        rows,
    )

    # bypass the answer memo: the benchmark measures evaluation
    benchmark(
        lambda: Session(
            program=session.program, database=session.database
        ).query(query, method="magic")
    )


def test_magic_scales_with_cone_not_graph(benchmark):
    """On a fixed tree, a deeper query root means a smaller cone and
    proportionally less magic work -- while naive work stays constant."""
    session = Session(program=ancestor_program(), database=tree_database(7))
    naive_facts = session.query(
        ancestor_query("r"), method="seminaive"
    ).stats.facts_derived

    rows = []
    previous = None
    for root in ("r", "r.0", "r.0.0", "r.0.0.0"):
        answer = session.query(ancestor_query(root), method="magic")
        rows.append([root, len(answer.rows), answer.stats.facts_derived])
        if previous is not None:
            assert answer.stats.facts_derived < previous
        previous = answer.stats.facts_derived
    print_table(
        f"E6b magic work tracks the cone (naive would derive {naive_facts})",
        ["query root", "answers", "facts derived"],
        rows,
    )
    benchmark(
        lambda: Session(
            program=session.program, database=session.database
        ).query(ancestor_query("r.0.0"), method="magic")
    )
