"""E8 -- Lemma 9.3: fuller sips compute a subset of the facts of the
partial sips they contain.

Compares the full left-to-right compressed sip against the no-memory
chain sip (Example 1 (I) vs (II)) on the nonlinear same-generation
program, asserting per-predicate containment and reporting counts.
"""

import pytest

from repro import build_chain_sip, compare_sips, rewrite
from repro.workloads import (
    nonlinear_samegen_program,
    samegen_database,
    samegen_query,
)

from conftest import print_table

PARAMS = [(3, 4, 6), (3, 6, 12), (4, 5, 10)]


@pytest.mark.parametrize("layers,width,flat", PARAMS)
def test_full_sip_contained_in_partial(benchmark, layers, width, flat):
    program = nonlinear_samegen_program()
    query = samegen_query("L0_0")
    full = rewrite(program, query, method="magic")
    partial = rewrite(
        program, query, method="magic", sip_builder=build_chain_sip
    )
    db = samegen_database(layers, width, flat_edges=flat, seed=1)
    comparison = benchmark(
        lambda: compare_sips(full, partial, db, max_iterations=2000)
    )
    assert comparison.contained, "Lemma 9.3 containment violated"
    assert comparison.fuller_facts <= comparison.partial_facts
    rows = [
        [key, fuller, partial_count]
        for key, (fuller, partial_count) in sorted(
            comparison.per_predicate.items()
        )
    ]
    rows.append(["TOTAL", comparison.fuller_facts, comparison.partial_facts])
    print_table(
        f"E8 full vs partial sip facts (layers={layers}, width={width}, "
        f"flat={flat})",
        ["predicate", "full sip", "partial sip"],
        rows,
    )
