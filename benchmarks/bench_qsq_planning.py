"""QSQ compiler ablation: legacy interpretive QSQ vs compiled subquery plans.

Not a paper artifact: both execution paths compute the *same* sets ``Q``
and ``F`` (asserted here), which is what the paper measures.  What the
compiled path changes is the substrate cost: slot frames instead of dict
substitutions, answer stores indexed on the adornment's bound positions,
and -- the big one -- delta-driven rounds in place of the legacy loop's
full replay of every accumulated ``(rule, bound_vector)`` pair per
iteration, which is quadratic in rounds.  With both engines compiled,
the cross-strategy comparison of ``bench_method_comparison.py`` becomes
a statement about magic vs sip strategies, not interpreter overhead.

``QSQ_BENCH_DEPTH`` / ``QSQ_BENCH_LAYERS`` shrink the workloads for CI
smoke runs; the >= 3x wall-clock assertion only applies at depth >= 100
(the legacy path's asymptotic disadvantage needs room to show).
"""

import os
import time


from repro import adorn_program, qsq_evaluate
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nonlinear_samegen_program,
    samegen_database,
    samegen_query,
)

from conftest import print_table

DEPTH = int(os.environ.get("QSQ_BENCH_DEPTH", "120"))
LAYERS = int(os.environ.get("QSQ_BENCH_LAYERS", "100"))
MIN_SPEEDUP = 3.0


def run_both(program, query, db):
    adorned = adorn_program(program, query)
    t0 = time.perf_counter()
    legacy = qsq_evaluate(
        adorned.program, db, adorned.query_literal, use_planner=False
    )
    t1 = time.perf_counter()
    compiled = qsq_evaluate(
        adorned.program, db, adorned.query_literal, use_planner=True
    )
    t2 = time.perf_counter()
    return adorned, legacy, compiled, t1 - t0, t2 - t1


def assert_equivalent(adorned, legacy, compiled):
    """Identical Q and F -- divergence here fails the CI smoke run."""
    assert compiled.queries == legacy.queries
    assert compiled.answers == legacy.answers
    assert compiled.subqueries_generated == legacy.subqueries_generated
    assert compiled.query_answers(adorned.query_literal) == (
        legacy.query_answers(adorned.query_literal)
    )


def report(title, legacy, compiled, legacy_s, compiled_s):
    speedup = legacy_s / compiled_s if compiled_s > 0 else float("inf")
    print_table(
        title,
        ["path", "queries", "answers", "rounds", "seconds"],
        [
            ["legacy", legacy.query_count(), legacy.answer_count(),
             legacy.iterations, f"{legacy_s:.3f}"],
            ["compiled", compiled.query_count(), compiled.answer_count(),
             compiled.iterations, f"{compiled_s:.3f}"],
            ["speedup", "", "", "", f"{speedup:.1f}x"],
        ],
    )
    return speedup


def test_ancestor_chain_qsq_planning(benchmark):
    """Linear ancestor on a chain: the legacy loop replays every input
    against every accumulated answer each round."""
    program = ancestor_program()
    query = ancestor_query("n0")
    db = chain_database(DEPTH)
    adorned, legacy, compiled, legacy_s, compiled_s = run_both(
        program, query, db
    )
    assert_equivalent(adorned, legacy, compiled)
    speedup = report(
        f"qsq planning: ancestor on chain {DEPTH}",
        legacy, compiled, legacy_s, compiled_s,
    )
    if DEPTH >= 100:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled QSQ only {speedup:.1f}x faster at depth {DEPTH}"
        )
    benchmark(
        lambda: qsq_evaluate(
            adorned.program, db, adorned.query_literal, use_planner=True
        )
    )


def test_samegen_qsq_planning(benchmark):
    """Nonlinear same-generation on layered data at depth >= 100."""
    program = nonlinear_samegen_program()
    query = samegen_query("L0_0")
    db = samegen_database(layers=LAYERS, width=3, flat_edges=2)
    adorned, legacy, compiled, legacy_s, compiled_s = run_both(
        program, query, db
    )
    assert_equivalent(adorned, legacy, compiled)
    speedup = report(
        f"qsq planning: same-generation, {LAYERS} layers",
        legacy, compiled, legacy_s, compiled_s,
    )
    if LAYERS >= 100:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled QSQ only {speedup:.1f}x faster at {LAYERS} layers"
        )
    benchmark(
        lambda: qsq_evaluate(
            adorned.program, db, adorned.query_literal, use_planner=True
        )
    )


def test_plan_cache_across_repeats(benchmark):
    """Benchmark-loop shape: repeated evaluation of one program should
    compile once and hit the shared cache afterwards."""
    from repro import PlanCache

    cache = PlanCache()
    program = ancestor_program()
    query = ancestor_query("n0")
    db = chain_database(min(DEPTH, 60))
    adorned = adorn_program(program, query)
    first = qsq_evaluate(
        adorned.program, db, adorned.query_literal, plan_cache=cache
    )
    assert first.plan_cache_misses == 1
    for _ in range(3):
        again = qsq_evaluate(
            adorned.program, db, adorned.query_literal, plan_cache=cache
        )
        assert again.plan_cache_hits == 1
        assert again.plan_cache_misses == 0
    assert cache.hits == 3 and cache.misses == 1
    benchmark(
        lambda: qsq_evaluate(
            adorned.program, db, adorned.query_literal, plan_cache=cache
        )
    )
