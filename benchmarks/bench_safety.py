"""E9 -- Section 10: the safety decision table, statically and
dynamically confirmed.

Static: Theorem 10.2 (magic safe on Datalog), Theorem 10.1 (positive
binding-graph cycles certify list reverse), Theorem 10.3 (cyclic
argument graph: counting diverges on nonlinear ancestor).
Dynamic: the certified-diverging cases actually overrun a fact budget;
the certified-safe cases terminate.
"""


from repro import (
    NonTerminationError,
    adorn_program,
    counting_safety,
    evaluate,
    magic_safety,
    rewrite,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    reverse_query,
)

from conftest import print_table

CASES = {
    "ancestor": (ancestor_program, lambda: ancestor_query("n0")),
    "nonlinear_ancestor": (
        nonlinear_ancestor_program,
        lambda: ancestor_query("n0"),
    ),
    "nested_samegen": (
        nested_samegen_program,
        lambda: nested_samegen_query("a"),
    ),
    "list_reverse": (
        list_reverse_program,
        lambda: reverse_query(integer_list(3)),
    ),
}

EXPECTED = {
    #                     magic.safe  counting.safe
    "ancestor": (True, None),
    "nonlinear_ancestor": (True, False),
    "nested_samegen": (True, None),
    "list_reverse": (True, True),
}


def test_static_safety_table(benchmark):
    def build():
        rows = []
        for name, (program_maker, query_maker) in sorted(CASES.items()):
            adorned = adorn_program(program_maker(), query_maker())
            magic = magic_safety(adorned)
            counting = counting_safety(adorned)
            rows.append(
                [
                    name,
                    f"{magic.safe} (Thm {magic.theorem})",
                    f"{counting.safe} (Thm {counting.theorem})",
                ]
            )
        return rows

    rows = benchmark(build)
    for name, (program_maker, query_maker) in sorted(CASES.items()):
        adorned = adorn_program(program_maker(), query_maker())
        expected_magic, expected_counting = EXPECTED[name]
        assert magic_safety(adorned).safe is expected_magic, name
        assert counting_safety(adorned).safe is expected_counting, name
    print_table(
        "E9 static safety verdicts (True=safe, False=diverges, None=no "
        "certificate)",
        ["program", "magic methods", "counting methods"],
        rows,
    )


def test_dynamic_confirmation_magic_safe(benchmark):
    """Certified-safe combinations terminate, including on cycles."""

    def run():
        outcomes = []
        magic = rewrite(ancestor_program(), ancestor_query("n0"), "magic")
        evaluate(magic.program, magic.seeded_database(cycle_database(6)))
        outcomes.append("magic/cyclic-data terminated")
        reverse = rewrite(
            list_reverse_program(),
            reverse_query(integer_list(6)),
            method="counting",
        )
        evaluate(reverse.program, reverse.seeded_database(_empty()))
        outcomes.append("counting/list-reverse terminated")
        return outcomes

    outcomes = benchmark(run)
    assert len(outcomes) == 2


def test_dynamic_confirmation_counting_diverges(benchmark):
    """Certified-diverging combinations overrun any fact budget."""

    def run():
        rewritten = rewrite(
            nonlinear_ancestor_program(), ancestor_query("n0"), "counting"
        )
        try:
            evaluate(
                rewritten.program,
                rewritten.seeded_database(chain_database(4)),
                max_facts=2000,
            )
        except NonTerminationError as exc:
            return exc
        return None

    exc = benchmark(run)
    assert isinstance(exc, NonTerminationError)
    print_table(
        "E9b dynamic confirmation",
        ["combination", "outcome"],
        [
            [
                "counting on nonlinear ancestor (chain data)",
                f"diverged after {exc.iterations} iterations / "
                f"{exc.facts} facts",
            ]
        ],
    )


def _empty():
    from repro.datalog.database import Database

    return Database()
