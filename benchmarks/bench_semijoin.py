"""E12 -- Section 8: the semijoin optimization's effect, and the
ablation between its three ingredients.

Measured: join work (tuples scanned) and fact width for the plain GC
program vs Lemma 8.1 only, Lemma 8.1 + 8.2, and the full Theorem 8.3
optimization, across chain and tree workloads.

Shape assertions: the full optimization never does more join work than
the lemma-level passes, and drops exactly the bound columns.
"""

import pytest

from repro import (
    evaluate,
    lemma_8_1_prune,
    lemma_8_2_anonymize,
    rewrite,
    semijoin_optimize,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nonlinear_samegen_program,
    samegen_database,
    samegen_query,
    tree_database,
)

from conftest import print_table

WORKLOADS = {
    "chain_60": (lambda: chain_database(60), "n0"),
    "tree_d6": (lambda: tree_database(6), "r"),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_semijoin_ablation_on_ancestor(benchmark, workload):
    db_maker, root = WORKLOADS[workload]
    program = ancestor_program()
    query = ancestor_query(root)
    db = db_maker()
    plain = rewrite(program, query, method="counting")
    variants = {
        "counting (plain)": plain,
        "+ lemma 8.1": lemma_8_1_prune(plain),
        "+ lemma 8.1 + 8.2": lemma_8_2_anonymize(lemma_8_1_prune(plain)),
        "+ theorem 8.3 (full)": semijoin_optimize(plain),
    }
    rows = []
    scans = {}
    answers = {}
    for name, variant in variants.items():
        result = evaluate(variant.program, variant.seeded_database(db))
        answers[name] = variant.extract_answers(result)
        scans[name] = result.stats.tuples_scanned
        width = max(
            (
                len(row)
                for row in result.database.tuples("anc_ix_bf")
            ),
            default=0,
        )
        rows.append(
            [name, result.stats.facts_derived, scans[name], width]
        )
    baseline_answers = answers["counting (plain)"]
    assert all(a == baseline_answers for a in answers.values())
    assert scans["+ theorem 8.3 (full)"] <= scans["counting (plain)"]
    print_table(
        f"E12 semijoin ablation: ancestor on {workload}",
        ["variant", "facts", "tuples scanned", "anc_ix width"],
        rows,
    )
    full = variants["+ theorem 8.3 (full)"]
    benchmark(lambda: evaluate(full.program, full.seeded_database(db)))


def test_semijoin_on_nonlinear_samegen(benchmark):
    program = nonlinear_samegen_program()
    query = samegen_query("L0_0")
    db = samegen_database(3, 5, flat_edges=8)
    plain = rewrite(program, query, method="counting")
    optimized = semijoin_optimize(plain)

    plain_result = evaluate(
        plain.program, plain.seeded_database(db), max_iterations=2000
    )
    opt_result = evaluate(
        optimized.program, optimized.seeded_database(db), max_iterations=2000
    )
    assert plain.extract_answers(plain_result) == optimized.extract_answers(
        opt_result
    )
    assert (
        opt_result.stats.tuples_scanned <= plain_result.stats.tuples_scanned
    )
    print_table(
        "E12b semijoin on nonlinear same-generation",
        ["variant", "facts", "tuples scanned"],
        [
            [
                "counting (plain)",
                plain_result.stats.facts_derived,
                plain_result.stats.tuples_scanned,
            ],
            [
                "+ theorem 8.3 (full)",
                opt_result.stats.facts_derived,
                opt_result.stats.tuples_scanned,
            ],
        ],
    )
    benchmark(
        lambda: evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=2000,
        )
    )
