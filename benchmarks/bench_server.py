"""Serving benchmark: sustained mixed read/write traffic (repro serve).

Measures queries/sec through the in-process server for the four
serving modes -- cold evaluation, memo hit, coalesced wait, and
view-served selection -- then runs a sustained mixed read/write
workload over TCP and reports the blend.  Two gates:

* **Coalescing**: N >= 8 identical concurrent cold queries perform
  exactly one evaluation (asserted on the server's own counters, so
  it cannot pass by timing luck).
* **Readers never block on the writer**: reader p95 latency under
  continuous write load stays within 2x the idle p95 (wall-clock;
  ``BENCH_TIMING_STRICT=0`` disarms on noisy shared runners -- the
  coalescing and correctness gates stay armed).

``BENCH_SERVER_DEPTH`` scales the ancestor-chain workload (default
60; CI smoke uses a small depth).  Emits ``BENCH_server.json``.
"""

from __future__ import annotations

import os
import threading
import time

from conftest import print_table, record_bench

from repro.server import ReproClient, ServerConfig, ServerHandle

TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
DEPTH = int(os.environ.get("BENCH_SERVER_DEPTH", "60"))

RULES = (
    "anc(X, Y) :- par(X, Y).\n"
    "anc(X, Z) :- par(X, Y), anc(Y, Z).\n"
)


def chain_source(depth: int) -> str:
    facts = "".join(
        f"par(n{i}, n{i + 1}).\n" for i in range(depth)
    )
    return RULES + facts


def p95(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))]


def test_serving_mode_throughput():
    """qps for cold vs memo-hit vs view-served (same query stream)."""
    n = DEPTH  # served results are memoized, so cold/view need distinct keys

    # cold: distinct selective queries, every one a fresh evaluation
    with ServerHandle.start(chain_source(DEPTH)) as handle:
        started = time.perf_counter()
        for i in range(n):
            out = handle.request(
                {"op": "query", "query": f"anc(n{i}, X)?"}
            )
            assert out["ok"], out
        cold_qps = n / (time.perf_counter() - started)
        stats = handle.stats()
        assert stats["cold_evaluations"] == n

    # memo: one query repeated -- after the first, pure cache hits
    with ServerHandle.start(chain_source(DEPTH)) as handle:
        handle.request({"op": "query", "query": "anc(n0, X)?"})
        started = time.perf_counter()
        for _ in range(n):
            out = handle.request({"op": "query", "query": "anc(n0, X)?"})
            assert out["served"] == "memo"
        memo_qps = n / (time.perf_counter() - started)

    # view: maintained materialization serves by selection
    with ServerHandle.start(
        chain_source(DEPTH), materialize=["anc"]
    ) as handle:
        started = time.perf_counter()
        for i in range(n):
            out = handle.request(
                {"op": "query", "query": f"anc(n{i}, X)?"}
            )
            assert out["served"] == "view", out
        view_qps = n / (time.perf_counter() - started)

    print_table(
        f"serving throughput (ancestor depth={DEPTH}, {n} queries/mode)",
        ["mode", "queries/sec"],
        [
            ["cold", f"{cold_qps:.0f}"],
            ["memo-hit", f"{memo_qps:.0f}"],
            ["view-served", f"{view_qps:.0f}"],
        ],
    )
    record_bench(
        {
            "depth": DEPTH,
            "queries_per_mode": n,
            "cold_qps": cold_qps,
            "memo_qps": memo_qps,
            "view_qps": view_qps,
        }
    )
    if TIMING_STRICT:
        # caches must beat cold evaluation
        assert memo_qps > cold_qps
        assert view_qps > cold_qps


def test_coalescing_gate():
    """N identical concurrent cold queries -> exactly 1 evaluation."""
    n = 12
    with ServerHandle.start(
        chain_source(DEPTH), config=ServerConfig(reader_threads=4)
    ) as handle:
        barrier = threading.Barrier(n)
        results = [None] * n

        def fire(i):
            barrier.wait()
            results[i] = handle.request(
                {"op": "query", "query": "anc(n0, X)?"}
            )

        started = time.perf_counter()
        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        stats = handle.stats()
        rows = {tuple(map(tuple, r["rows"])) for r in results}
    assert all(r["ok"] for r in results)
    assert len(rows) == 1  # every waiter got the shared answer
    assert stats["cold_evaluations"] == 1, stats
    assert stats["coalesced"] + stats["memo_hits"] == n - 1
    print_table(
        f"coalescing ({n} identical concurrent cold queries)",
        ["evaluations", "coalesced", "memo_hits", "wall clock (s)"],
        [[
            stats["cold_evaluations"],
            stats["coalesced"],
            stats["memo_hits"],
            f"{elapsed:.4f}",
        ]],
    )
    record_bench(
        {
            "concurrent_identical": n,
            "evaluations": stats["cold_evaluations"],
            "coalesced": stats["coalesced"],
            "memo_hits": stats["memo_hits"],
        }
    )


def _reader_latencies(handle, rounds, salt):
    latencies = []
    for i in range(rounds):
        started = time.perf_counter()
        out = handle.request(
            {"op": "query", "query": f"anc(n{(i * 7 + salt) % DEPTH}, X)?"}
        )
        latencies.append(time.perf_counter() - started)
        assert out["ok"], out
    return latencies


def test_readers_do_not_block_on_writer():
    """Reader p95 under continuous write load <= 2x idle p95.

    Readers run against pinned snapshots; the writer publishes new
    versions concurrently.  Each reader query is distinct and cold in
    both phases (writes keep bumping the version, so nothing is ever
    memo-served in the loaded phase; the idle phase uses distinct
    queries for the same reason).
    """
    rounds = 50
    with ServerHandle.start(chain_source(DEPTH)) as handle:
        idle = _reader_latencies(handle, rounds, salt=0)

        stop = threading.Event()

        def writer():
            step = 0
            while not stop.is_set():
                handle.request(
                    {"op": "assert", "facts": [f"par(w{step}, w{step + 1})."]}
                )
                step += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            loaded = _reader_latencies(handle, rounds, salt=1)
        finally:
            stop.set()
            thread.join()
        stats = handle.stats()

    idle_p95 = p95(idle)
    loaded_p95 = p95(loaded)
    ratio = loaded_p95 / idle_p95 if idle_p95 > 0 else 1.0
    print_table(
        f"reader latency under write load (depth={DEPTH}, "
        f"{rounds} reads/phase)",
        ["phase", "p50 (ms)", "p95 (ms)"],
        [
            ["idle", f"{sorted(idle)[len(idle) // 2] * 1e3:.2f}",
             f"{idle_p95 * 1e3:.2f}"],
            ["write load", f"{sorted(loaded)[len(loaded) // 2] * 1e3:.2f}",
             f"{loaded_p95 * 1e3:.2f}"],
        ],
    )
    record_bench(
        {
            "depth": DEPTH,
            "rounds": rounds,
            "idle_p95_s": idle_p95,
            "loaded_p95_s": loaded_p95,
            "ratio": ratio,
            "versions_published": stats["snapshots_published"],
            "timing_strict": TIMING_STRICT,
        }
    )
    assert stats["snapshots_published"] > 1  # the writer really ran
    if TIMING_STRICT:
        assert ratio <= 2.0, (
            f"reader p95 under write load {loaded_p95 * 1e3:.2f}ms is "
            f"{ratio:.2f}x the idle p95 {idle_p95 * 1e3:.2f}ms (> 2x): "
            "readers are blocking on the writer"
        )


def test_mixed_workload_over_tcp():
    """Sustained mixed read/write blend through real sockets."""
    reader_count = 4
    per_reader = 30
    with ServerHandle.start(
        chain_source(DEPTH),
        config=ServerConfig(reader_threads=4),
        materialize=["anc"],
    ) as handle:
        host, port = handle.address
        stop = threading.Event()
        errors = []

        def writer():
            with ReproClient(host, port) as client:
                step = 0
                while not stop.is_set():
                    client.assert_facts([f"par(m{step}, m{step + 1})."])
                    step += 1
                    time.sleep(0.002)

        def reader(seed):
            try:
                with ReproClient(host, port) as client:
                    for i in range(per_reader):
                        if i % 3 == 0:
                            # hot: a view-covered query
                            client.query(f"anc(n{seed}, X)?")
                        else:
                            # selective, version-chasing cold evaluation
                            client.query(
                                f"anc(n{(seed + i) % DEPTH}, X)?",
                                method="seminaive",
                            )
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        readers = [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(reader_count)
        ]
        started = time.perf_counter()
        writer_thread.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        writer_thread.join()
        elapsed = time.perf_counter() - started
        stats = handle.stats()

    assert not errors, errors
    total_queries = reader_count * per_reader
    qps = total_queries / elapsed
    print_table(
        f"mixed read/write over TCP (depth={DEPTH}, {reader_count} "
        f"readers x {per_reader} queries + 1 writer)",
        [
            "queries/sec", "cold", "memo", "coalesced", "view",
            "writes", "versions",
        ],
        [[
            f"{qps:.0f}",
            stats["cold_evaluations"],
            stats["memo_hits"],
            stats["coalesced"],
            stats["view_serves"],
            stats["mutations_applied"],
            stats["snapshots_published"],
        ]],
    )
    record_bench(
        {
            "depth": DEPTH,
            "readers": reader_count,
            "queries": total_queries,
            "qps": qps,
            "cold_evaluations": stats["cold_evaluations"],
            "memo_hits": stats["memo_hits"],
            "coalesced": stats["coalesced"],
            "view_serves": stats["view_serves"],
            "mutations": stats["mutations_applied"],
            "versions_published": stats["snapshots_published"],
            "snapshots_live_at_end": stats["snapshots_live"],
        }
    )
    assert stats["mutations_applied"] > 0
    assert stats["errors"] == 0
    # every serving mode participated in the blend
    assert stats["view_serves"] > 0
    assert stats["cold_evaluations"] > 0
    # retired versions were released, not accumulated
    assert stats["snapshots_live"] <= 2
