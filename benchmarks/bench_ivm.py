"""Incremental view maintenance: delta passes vs cold re-evaluation.

A :class:`repro.MaterializedProgram` keeps the derived relations of a
stratified program materialized across mutations: asserts propagate by
semi-naive delta rounds, retracts by exact counting (non-recursive
strata) and DRed overdelete/rederive (recursive strata).  This bench
records the headline economics -- a single-fact assert or retract costs
work proportional to its *delta cone*, not to the database:

* on an ancestor chain and a stratified BOM at depth >= 100, a
  single-fact assert and retract are each >= 20x faster than a cold
  re-evaluation of the program (the gate arms at depth >= 100 and can
  be disarmed with ``BENCH_TIMING_STRICT=0`` for noisy runners);
* a random assert/retract sweep agrees with the cold semi-naive oracle
  after every pass (``check_consistency`` audits every derived
  relation plus the counting bookkeeping);
* an injected fault mid-maintenance aborts atomically: the source
  database still passes ``check_integrity``, the view degrades to
  stale, and the next pass rebuilds it.

``IVM_BENCH_DEPTH`` shrinks the workload for CI smoke runs.
"""

import os
import random
import statistics
import time

from repro import (
    EvaluationBudget,
    FaultPlan,
    InjectedFault,
    MaterializedProgram,
    evaluate_seminaive,
)
from repro.workloads import (
    ancestor_program,
    bom_database,
    bom_program,
    chain_database,
)

from conftest import print_table, record_bench

DEPTH = int(os.environ.get("IVM_BENCH_DEPTH", "150"))
#: the BOM chain runs deeper: its cold evaluation grows with the
#: squared depth while a single-fact repair stays linear, so the extra
#: depth is where the delta-proportionality gap becomes unambiguous
BOM_DEPTH = int(os.environ.get("IVM_BENCH_BOM_DEPTH", str(DEPTH + 100)))
COLD_REPEATS = 3
MUTATION_REPEATS = 7

#: the >=20x maintain/cold gates only arm on real workloads
TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
SPEEDUP_GATE = 20


def _median_cold(program, database):
    seconds = []
    for _ in range(COLD_REPEATS):
        t0 = time.perf_counter()
        evaluate_seminaive(program, database.copy())
        seconds.append(time.perf_counter() - t0)
    return statistics.median(seconds)


def _median_maintained(mp, database, pred, row):
    """Median maintain() seconds for asserting and retracting ``row``.

    The fact is asserted and retracted alternately so every repetition
    starts from the same materialized state; each direction's pass is
    verified against the cold oracle on the first repetition.
    """
    assert_seconds, retract_seconds = [], []
    for rep in range(MUTATION_REPEATS):
        database.add_values(pred, [row])
        t0 = time.perf_counter()
        result = mp.maintain()
        assert_seconds.append(time.perf_counter() - t0)
        assert result.action == "maintained"
        if rep == 0:
            assert mp.check_consistency()
        database.retract_values(pred, [row])
        t0 = time.perf_counter()
        result = mp.maintain()
        retract_seconds.append(time.perf_counter() - t0)
        assert result.action == "maintained"
        if rep == 0:
            assert mp.check_consistency()
    return (
        statistics.median(assert_seconds),
        statistics.median(retract_seconds),
    )


def _report(workload, depth, cold, assert_s, retract_s, extra=None):
    armed = TIMING_STRICT and depth >= 100
    assert_x = cold / assert_s if assert_s else float("inf")
    retract_x = cold / retract_s if retract_s else float("inf")
    print_table(
        f"incremental maintenance: {workload}, depth {depth}",
        ["phase", "seconds", "speedup vs cold"],
        [
            ["cold re-evaluation", f"{cold:.6f}", "1x"],
            ["assert + maintain", f"{assert_s:.6f}", f"{assert_x:.0f}x"],
            ["retract + maintain", f"{retract_s:.6f}", f"{retract_x:.0f}x"],
        ],
    )
    entry = {
        "workload": workload,
        "depth": depth,
        "cold_seconds": round(cold, 6),
        "assert_maintain_seconds": round(assert_s, 6),
        "retract_maintain_seconds": round(retract_s, 6),
        "assert_speedup": round(assert_x, 1),
        "retract_speedup": round(retract_x, 1),
        "gate_armed": armed,
        "speedup_gate": SPEEDUP_GATE,
    }
    entry.update(extra or {})
    record_bench(entry)
    if armed:
        assert assert_x >= SPEEDUP_GATE, (
            f"{workload}: single-fact assert should maintain >= "
            f"{SPEEDUP_GATE}x faster than cold, got {assert_x:.1f}x"
        )
        assert retract_x >= SPEEDUP_GATE, (
            f"{workload}: single-fact retract should maintain >= "
            f"{SPEEDUP_GATE}x faster than cold, got {retract_x:.1f}x"
        )


def test_ancestor_chain_single_fact_mutations(benchmark):
    program = ancestor_program()
    database = chain_database(DEPTH)
    cold = _median_cold(program, database)
    mp = MaterializedProgram(program, database)
    assert_s, retract_s = _median_maintained(
        mp, database, "par", ("m0", "n0")
    )
    _report(
        "ancestor_chain",
        DEPTH,
        cold,
        assert_s,
        retract_s,
        {"anc_rows": len(mp.tuples("anc"))},
    )
    mp.close()

    def round_trip():
        database.add_values("par", [("m0", "n0")])
        fresh.maintain()
        database.retract_values("par", [("m0", "n0")])
        fresh.maintain()

    fresh = MaterializedProgram(program, database)
    benchmark(round_trip)
    fresh.close()


def test_stratified_bom_single_fact_mutations(benchmark):
    program = bom_program()
    database = bom_database(
        depth=BOM_DEPTH, fanout=1, exception_rate=0.05, seed=7
    )
    cold = _median_cold(program, database)
    mp = MaterializedProgram(program, database)
    # a new assembly above the old root: its component cone is the
    # whole chain, but strata are repaired by delta, not re-derived
    assert_s, retract_s = _median_maintained(
        mp, database, "subpart", ("m0", "p0")
    )
    _report(
        "bom_stratified",
        BOM_DEPTH,
        cold,
        assert_s,
        retract_s,
        {
            "strata": 4,
            "component_rows": len(mp.tuples("component")),
        },
    )
    mp.close()

    def round_trip():
        database.add_values("subpart", [("m0", "p0")])
        fresh.maintain()
        database.retract_values("subpart", [("m0", "p0")])
        fresh.maintain()

    fresh = MaterializedProgram(program, database)
    benchmark(round_trip)
    fresh.close()


def test_random_mutation_sweep_agrees_with_cold_oracle(benchmark):
    """Maintained state == cold semi-naive after every random mutation."""
    sweep_depth = min(DEPTH, 30)
    program = bom_program()
    database = bom_database(
        depth=sweep_depth, fanout=1, exception_rate=0.1, seed=3
    )
    mp = MaterializedProgram(program, database)
    rng = random.Random(11)
    parts = [f"p{i}" for i in range(sweep_depth + 1)]
    ops = 0
    for _ in range(24):
        pred, row = rng.choice(
            [
                ("subpart", (rng.choice(parts), rng.choice(parts))),
                ("exception", (rng.choice(parts),)),
                ("part", (rng.choice(parts),)),
            ]
        )
        if rng.random() < 0.5:
            database.add_values(pred, [row])
        else:
            database.retract_values(pred, [row])
        mp.maintain()
        assert mp.check_consistency(), (
            f"maintained state diverged from the cold oracle "
            f"after mutating {pred}{row}"
        )
        ops += 1
    record_bench(
        {
            "workload": "bom_random_sweep",
            "depth": sweep_depth,
            "mutations": ops,
            "oracle_agreement": True,
            "passes": mp.passes,
        }
    )
    mp.close()
    benchmark(lambda: evaluate_seminaive(program, database.copy()))


def test_fault_injected_abort_is_atomic(benchmark):
    """An aborted pass leaves the database clean and the view healable."""
    program = ancestor_program()
    database = chain_database(min(DEPTH, 40))
    mp = MaterializedProgram(program, database)
    aborted = healed = 0
    for after in (1, 2, 3, 5, 8):
        database.add_values("par", [("m0", "n0")])
        meter = EvaluationBudget(
            fault_plan=FaultPlan("any", after)
        ).start()
        try:
            mp.maintain(meter=meter)
        except InjectedFault:
            aborted += 1
            assert mp.stale
            assert database.check_integrity()
            result = mp.maintain()  # stale pass rebuilds cold
            assert result.action == "rebuilt"
            healed += 1
        assert mp.check_consistency()
        assert database.check_integrity()
        database.retract_values("par", [("m0", "n0")])
        mp.maintain()
        assert mp.check_consistency()
    assert aborted > 0, "no fault boundary fired; widen the sweep"
    record_bench(
        {
            "workload": "fault_injected_maintenance",
            "boundaries_tried": 5,
            "aborted": aborted,
            "healed": healed,
            "integrity_clean": True,
        }
    )
    mp.close()

    def abort_then_heal():
        database.add_values("par", [("m0", "n0")])
        meter = EvaluationBudget(fault_plan=FaultPlan("any", 2)).start()
        try:
            fresh.maintain(meter=meter)
        except InjectedFault:
            fresh.maintain()
        database.retract_values("par", [("m0", "n0")])
        fresh.maintain()

    fresh = MaterializedProgram(program, database)
    benchmark(abort_then_heal)
    fresh.close()
