"""E10 -- the Section 9 discussion (after [5]): the number of magic
facts is, in general, a small fraction of the generated facts.

Measures the magic/total derived-fact ratio across workloads and query
selectivities; asserts it stays at or below one magic fact per answer
fact plus seed (the paper's "small fraction" holds whenever each
subquery yields at least one answer on average).
"""

import pytest

from repro import answer_query
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nonlinear_samegen_program,
    random_dag_database,
    samegen_database,
    samegen_query,
    tree_database,
)

from conftest import print_table

CASES = {
    "ancestor_chain_80": (
        ancestor_program,
        lambda: ancestor_query("n0"),
        lambda: chain_database(80),
    ),
    "ancestor_tree_d7": (
        ancestor_program,
        lambda: ancestor_query("r.0"),
        lambda: tree_database(7),
    ),
    "ancestor_dag_80": (
        ancestor_program,
        lambda: ancestor_query("n2"),
        lambda: random_dag_database(80, 0.06, seed=21),
    ),
    "nonlinear_samegen": (
        nonlinear_samegen_program,
        lambda: samegen_query("L0_0"),
        lambda: samegen_database(4, 6, flat_edges=10),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_magic_fact_fraction(benchmark, name):
    program_maker, query_maker, db_maker = CASES[name]
    program, query, db = program_maker(), query_maker(), db_maker()
    answer = benchmark(
        lambda: answer_query(
            program, db, query, method="magic", max_iterations=2000
        )
    )
    breakdown = answer.rewritten.fact_breakdown(answer.evaluation)
    fraction = breakdown["magic"] / max(breakdown["total"], 1)
    print_table(
        f"E10 magic-fact overhead: {name}",
        ["adorned facts", "magic facts", "total", "magic fraction"],
        [
            [
                breakdown["adorned"],
                breakdown["magic"],
                breakdown["total"],
                f"{fraction:.2%}",
            ]
        ],
    )
    # the shape claim: magic facts never dominate
    assert fraction <= 0.5 + 1e-9
