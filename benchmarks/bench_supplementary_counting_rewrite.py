"""E5 -- Appendix A.6: regenerate the GSC rewrites (+ semijoin forms)."""

import pytest

from repro import rewrite, semijoin_optimize
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import canonical_rules, print_table

EXPECTED = {
    "ancestor": [
        "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), par(D, E).",
        "anc_ix_bf(A, B, C, D, E) :- supcnt2_2(A, B, C, D, F), "
        "anc_ix_bf(A+1, 2*B+2, 2*C+2, F, E).",
        "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- supcnt2_2(A, B, C, E, D).",
        "supcnt2_2(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), par(D, E).",
    ],
    "nonlinear_samegen": [
        "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- supcnt2_2(A, B, C, E, D).",
        "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- supcnt2_4(A, B, C, E, D).",
        "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), flat(D, E).",
        "sg_ix_bf(A, B, C, D, E) :- supcnt2_4(A, B, C, D, F), "
        "sg_ix_bf(A+1, 2*B+2, 5*C+4, F, G), down(G, E).",
        "supcnt2_2(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), up(D, E).",
        "supcnt2_3(A, B, C, D, E) :- supcnt2_2(A, B, C, D, F), "
        "sg_ix_bf(A+1, 2*B+2, 5*C+2, F, E).",
        "supcnt2_4(A, B, C, D, E) :- supcnt2_3(A, B, C, D, F), flat(F, E).",
    ],
}

EXPECTED_SEMIJOIN = {
    "ancestor": [
        "anc_ix_bf(A, B, C, D) :- anc_ix_bf(A+1, 2*B+2, 2*C+2, D).",
        "anc_ix_bf(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
        "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- supcnt2_2(A, B, C, D).",
        "supcnt2_2(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
    ],
    "nonlinear_samegen": [
        "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- supcnt2_2(A, B, C, D).",
        "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- supcnt2_4(A, B, C, D).",
        "sg_ix_bf(A, B, C, D) :- cnt_sg_bf(A, B, C, E), flat(E, D).",
        "sg_ix_bf(A, B, C, D) :- sg_ix_bf(A+1, 2*B+2, 5*C+4, E), down(E, D).",
        "supcnt2_2(A, B, C, D) :- cnt_sg_bf(A, B, C, E), up(E, D).",
        "supcnt2_3(A, B, C, D) :- sg_ix_bf(A+1, 2*B+2, 5*C+2, D).",
        "supcnt2_4(A, B, C, D) :- supcnt2_3(A, B, C, E), flat(E, D).",
    ],
}

CASES = {
    "ancestor": (ancestor_program, lambda: ancestor_query("john")),
    "nonlinear_samegen": (
        nonlinear_samegen_program,
        lambda: samegen_query("john"),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_gsc_rewrite_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    rewritten = benchmark(
        lambda: rewrite(program, query, method="supplementary_counting")
    )
    assert canonical_rules(rewritten) == sorted(EXPECTED[name])


@pytest.mark.parametrize("name", sorted(CASES))
def test_gsc_semijoin_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    plain = rewrite(program, query, method="supplementary_counting")
    optimized = benchmark(lambda: semijoin_optimize(plain))
    assert canonical_rules(optimized) == sorted(EXPECTED_SEMIJOIN[name])
    print_table(
        f"A.6 GSC + semijoin: {name}",
        ["rule"],
        [[rule] for rule in canonical_rules(optimized)],
    )


def test_gsc_rewrites_nested_and_reverse(benchmark):
    def run():
        nested = rewrite(
            nested_samegen_program(),
            nested_samegen_query("john"),
            method="supplementary_counting",
        )
        reverse = rewrite(
            list_reverse_program(),
            reverse_query(integer_list(2)),
            method="supplementary_counting",
        )
        return nested, reverse

    nested, reverse = benchmark(run)
    assert len(nested.rules) == 9
    assert len(reverse.rules) == 8
