"""E7 -- Theorem 9.1: bottom-up on P^mg is sip-optimal.

For each workload, evaluate the magic rewrite bottom-up and the QSQ
oracle (the least sip-strategy sets Q and F), and assert exact relation-
by-relation equality: magic facts = Q, adorned facts = F.
"""

import pytest

from repro import check_optimality, rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nested_samegen_database,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_samegen_program,
    random_dag_database,
    samegen_database,
    samegen_query,
    tree_database,
)

from conftest import print_table

CASES = {
    "ancestor_chain": (
        ancestor_program,
        lambda: ancestor_query("n0"),
        lambda: chain_database(40),
    ),
    "ancestor_tree": (
        ancestor_program,
        lambda: ancestor_query("r"),
        lambda: tree_database(5),
    ),
    "ancestor_dag": (
        ancestor_program,
        lambda: ancestor_query("n5"),
        lambda: random_dag_database(40, 0.1, seed=2),
    ),
    "nonlinear_samegen": (
        nonlinear_samegen_program,
        lambda: samegen_query("L0_0"),
        lambda: samegen_database(3, 5, flat_edges=8),
    ),
    "nested_samegen": (
        nested_samegen_program,
        lambda: nested_samegen_query("L0_0"),
        lambda: nested_samegen_database(3, 4),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_sip_optimality(benchmark, name):
    program_maker, query_maker, db_maker = CASES[name]
    rewritten = rewrite(program_maker(), query_maker(), method="magic")
    db = db_maker()
    report = benchmark(
        lambda: check_optimality(rewritten, db, max_iterations=2000)
    )
    assert report.sip_optimal, report.mismatches
    rows = []
    for key, (magic_facts, queries) in sorted(report.query_counts.items()):
        rows.append([key, "queries Q", magic_facts, queries])
    for key, (facts, answers) in sorted(report.fact_counts.items()):
        rows.append([key, "answers F", facts, answers])
    print_table(
        f"E7 sip-optimality: {name} (bottom-up P^mg vs sip-strategy oracle)",
        ["adorned predicate", "set", "bottom-up facts", "oracle size"],
        rows,
    )
