"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one of the paper's evaluation artifacts
(see DESIGN.md's experiment index).  Besides timing via
pytest-benchmark, each bench *asserts the shape* of the paper's claim
and prints the regenerated table with ``-s``.
"""

from __future__ import annotations

import string
from typing import List

import pytest

from repro import Variable
from repro.core.provenance import RewrittenProgram


def canonical_rule(rule) -> str:
    names = list(string.ascii_uppercase) + [f"V{i}" for i in range(100)]
    mapping = {}
    for var in rule.variables():
        mapping[var] = Variable(names[len(mapping)])
    return str(rule.substitute(mapping))


def canonical_rules(program) -> List[str]:
    if isinstance(program, RewrittenProgram):
        rules = [rr.rule for rr in program.rules]
    else:
        rules = [getattr(r, "rule", r) for r in program.rules]
    return sorted(canonical_rule(rule) for rule in rules)


def print_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    print()
    print(f"== {title}")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
