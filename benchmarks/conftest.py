"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one of the paper's evaluation artifacts
(see DESIGN.md's experiment index).  Besides timing via
pytest-benchmark, each bench *asserts the shape* of the paper's claim
and prints the regenerated table with ``-s``.

Machine-readable perf trajectory
--------------------------------

Every ``bench_<name>.py`` run additionally emits ``BENCH_<name>.json``
at the repo root (CI uploads them as artifacts), so the perf numbers
accumulate across commits instead of scrolling away in logs.  Three
sources feed each file, keyed by test:

* every :func:`print_table` call (the regenerated table itself --
  workload parameters live in the titles, tuple counts and wall-clock
  in the rows);
* explicit :func:`record_bench` calls for structured entries
  (workload params, tuple counts, per-engine seconds);
* the per-test wall clock and outcome, recorded automatically.

Set ``BENCH_JSON=0`` to disable the files (e.g. for scratch runs).
"""

from __future__ import annotations

import json
import os
import string
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro import Variable
from repro.core.provenance import RewrittenProgram

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_ENTRIES: Dict[str, List[dict]] = {}
_CURRENT: Dict[str, Optional[str]] = {"bench": None, "test": None}


def _bench_json_enabled() -> bool:
    return os.environ.get("BENCH_JSON", "1") != "0"


def _bench_name(path: str) -> Optional[str]:
    stem = Path(path).stem
    if stem.startswith("bench_"):
        return stem[len("bench_"):]
    return None


def record_bench(entry: dict, bench: Optional[str] = None) -> None:
    """Append one machine-readable entry to the current bench's JSON.

    ``bench`` defaults to the bench module of the currently running
    test; the current test name is attached automatically.
    """
    bench = bench or _CURRENT["bench"]
    if bench is None:
        return
    payload = {"test": _CURRENT["test"]}
    payload.update(entry)
    _BENCH_ENTRIES.setdefault(bench, []).append(payload)


@pytest.fixture(autouse=True)
def _bench_json_context(request):
    """Track which bench module/test is running for the recorders."""
    bench = _bench_name(str(request.node.fspath))
    _CURRENT["bench"] = bench
    _CURRENT["test"] = request.node.name
    yield
    _CURRENT["bench"] = None
    _CURRENT["test"] = None


def pytest_runtest_logreport(report):
    if report.when != "call":
        return
    bench = _bench_name(report.nodeid.split("::", 1)[0])
    if bench is None:
        return
    _BENCH_ENTRIES.setdefault(bench, []).append(
        {
            "test": report.nodeid.split("::")[-1],
            "outcome": report.outcome,
            "wall_clock_seconds": round(report.duration, 6),
        }
    )


def _merge_entries(existing: List[dict], fresh: List[dict]) -> List[dict]:
    """Replace re-run tests' entries, keep the rest of the module's.

    A partial run (``pytest benchmarks/bench_x.py -k one``) must not
    discard the recorded entries of the module's other tests.
    """
    fresh_tests = {entry.get("test") for entry in fresh}
    kept = [e for e in existing if e.get("test") not in fresh_tests]
    return kept + fresh


def pytest_sessionfinish(session, exitstatus):
    if not _bench_json_enabled():
        return
    for bench, entries in sorted(_BENCH_ENTRIES.items()):
        path = _REPO_ROOT / f"BENCH_{bench}.json"
        if path.exists():
            try:
                previous = json.loads(path.read_text()).get("entries", [])
            except (ValueError, OSError):
                previous = []
            entries = _merge_entries(previous, entries)
        payload = {
            "bench": bench,
            "schema": 1,
            "entries": entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def canonical_rule(rule) -> str:
    names = list(string.ascii_uppercase) + [f"V{i}" for i in range(100)]
    mapping = {}
    for var in rule.variables():
        mapping[var] = Variable(names[len(mapping)])
    return str(rule.substitute(mapping))


def canonical_rules(program) -> List[str]:
    if isinstance(program, RewrittenProgram):
        rules = [rr.rule for rr in program.rules]
    else:
        rules = [getattr(r, "rule", r) for r in program.rules]
    return sorted(canonical_rule(rule) for rule in rules)


def print_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    record_bench(
        {
            "table": {
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[str(v) for v in row] for row in rows],
            }
        }
    )
    print()
    print(f"== {title}")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
