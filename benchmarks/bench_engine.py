"""Substrate ablation: naive vs semi-naive vs magic across data sizes.

Not a paper artifact by itself, but the paper's Section 1 discussion
presumes the bottom-up substrate: semi-naive evaluation avoids naive's
re-derivations, and the rewrites then shrink what is derived at all.
This bench quantifies both steps so the E6/E11 numbers have a baseline.
"""

import pytest

from repro import answer_query, bottom_up_answer
from repro.workloads import ancestor_program, ancestor_query, chain_database

from conftest import print_table, record_bench

SIZES = [20, 40, 80]


@pytest.mark.parametrize("size", SIZES)
def test_engine_scaling(benchmark, size):
    program = ancestor_program()
    db = chain_database(size)
    query = ancestor_query("n0")

    rows = []
    firings = {}
    for method in ("naive", "seminaive", "magic"):
        answer = answer_query(program, db, query, method=method)
        firings[method] = answer.stats.rule_firings
        rows.append(
            [
                method,
                answer.stats.facts_derived,
                answer.stats.rule_firings,
                answer.stats.duplicate_derivations,
            ]
        )
    # semi-naive fires each derivation once; naive re-fires every round
    assert firings["seminaive"] < firings["naive"]
    print_table(
        f"engine ablation: ancestor on chain {size}",
        ["strategy", "facts", "firings", "duplicates"],
        rows,
    )
    benchmark(lambda: bottom_up_answer(program, db, query))


def test_qsq_vs_magic_same_work_shape(benchmark):
    """QSQ (tuple-at-a-time top-down) and magic (set-at-a-time bottom-up)
    implement the same sips: their answers coincide, and magic's derived
    facts equal QSQ's queries+answers (Theorem 9.1, timed here)."""
    from repro import adorn_program, qsq_evaluate, rewrite
    from repro.datalog.engine import evaluate

    program = ancestor_program()
    query = ancestor_query("n0")
    db = chain_database(60)

    adorned = adorn_program(program, query)
    rewritten = rewrite(program, query, method="magic", adorned=adorned)

    def run_qsq():
        return qsq_evaluate(adorned.program, db, adorned.query_literal)

    qsq = benchmark(run_qsq)
    magic_result = evaluate(
        rewritten.program, rewritten.seeded_database(db)
    )
    magic_facts = magic_result.database.tuples("anc^bf")
    assert magic_facts == qsq.answers["anc^bf"]
    magic_queries = magic_result.database.tuples("magic_anc_bf")
    assert magic_queries == qsq.queries["anc^bf"]


def test_columnar_batch_vs_legacy_rows(benchmark):
    """Columnar execution ablation at the engine level: the same
    semi-naive fixpoint run through (a) the legacy interpretive joins,
    (b) compiled plans executed a row-frame at a time, and (c) compiled
    plans executed over columns of interned term IDs.  All three derive
    the identical fact set; the table records what the storage/execution
    substrate alone is worth.  No wall-clock gate here -- the >= 5x gate
    lives in bench_join_planning.py at depth >= 100."""
    import time

    from repro import evaluate_seminaive

    program = ancestor_program()
    db = chain_database(120)

    def best_of(fn, reps=3):
        fn()
        best = float("inf")
        result = None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return result, best

    paths = [
        ("legacy rows", dict(use_planner=False)),
        ("compiled rows", dict(vectorized=False)),
        ("columnar batch", dict(vectorized=True)),
    ]
    rows = []
    results = {}
    for label, kwargs in paths:
        result, seconds = best_of(
            lambda kwargs=kwargs: evaluate_seminaive(program, db, **kwargs)
        )
        results[label] = result
        rows.append([label, result.stats.facts_derived, f"{seconds:.3f}"])
        record_bench(
            {"workload": "columnar ablation, ancestor chain 120",
             "path": label, "seconds": seconds,
             "facts": result.stats.facts_derived}
        )
    baseline = results["legacy rows"]
    for label in ("compiled rows", "columnar batch"):
        assert results[label].derived_tuples("anc") == baseline.derived_tuples(
            "anc"
        )
        assert results[label].stats.facts_derived == baseline.stats.facts_derived
    print_table(
        "columnar ablation: ancestor on chain 120",
        ["path", "facts", "seconds"],
        rows,
    )
    benchmark(lambda: evaluate_seminaive(program, db))


def test_add_many_bulk_load_beats_per_row_adds(benchmark):
    """Bulk EDB loads: ``Relation.add_many`` validates the batch up
    front, deduplicates with one set difference, and maintains each
    registered index in a batch pass with specialized key construction,
    instead of paying the per-row ``add`` call with per-index upkeep.
    Timed head-to-head (interleaved, best of 5) on a relation with the
    planner's typical index shapes; both paths must agree on contents."""
    import time

    from repro import Constant, Relation

    rows = [(Constant(i), Constant(i % 997)) for i in range(30000)]
    indexes = ((0,), (1,), (0, 1))

    def load_per_row():
        rel = Relation("edge")
        for positions in indexes:
            rel.register_index(positions)
        for row in rows:
            rel.add(row)
        return rel

    def load_bulk():
        rel = Relation("edge")
        for positions in indexes:
            rel.register_index(positions)
        rel.add_many(rows)
        return rel

    per_row_s = bulk_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        per_row = load_per_row()
        per_row_s = min(per_row_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        bulk = load_bulk()
        bulk_s = min(bulk_s, time.perf_counter() - t0)
    assert set(bulk) == set(per_row)
    assert bulk.lookup((1,), (Constant(5),)) and (
        sorted(map(str, bulk.lookup((1,), (Constant(5),))))
        == sorted(map(str, per_row.lookup((1,), (Constant(5),))))
    )
    print_table(
        "bulk EDB load, 30k rows, 3 registered indexes",
        ["path", "seconds"],
        [["per-row add", f"{per_row_s:.3f}"], ["add_many", f"{bulk_s:.3f}"]],
    )
    # ~1.3x locally; BENCH_TIMING_STRICT=0 disarms the wall-clock gate
    # on noisy shared runners (CI), where two ~100ms timings cannot be
    # compared reliably -- content equality above is always asserted
    import os

    if os.environ.get("BENCH_TIMING_STRICT", "1") != "0":
        assert bulk_s < per_row_s * 1.05, (
            f"bulk load ({bulk_s:.3f}s) did not beat per-row adds "
            f"({per_row_s:.3f}s)"
        )
    benchmark(load_bulk)
