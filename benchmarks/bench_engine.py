"""Substrate ablation: naive vs semi-naive vs magic across data sizes.

Not a paper artifact by itself, but the paper's Section 1 discussion
presumes the bottom-up substrate: semi-naive evaluation avoids naive's
re-derivations, and the rewrites then shrink what is derived at all.
This bench quantifies both steps so the E6/E11 numbers have a baseline.
"""

import pytest

from repro import answer_query, bottom_up_answer
from repro.workloads import ancestor_program, ancestor_query, chain_database

from conftest import print_table

SIZES = [20, 40, 80]


@pytest.mark.parametrize("size", SIZES)
def test_engine_scaling(benchmark, size):
    program = ancestor_program()
    db = chain_database(size)
    query = ancestor_query("n0")

    rows = []
    firings = {}
    for method in ("naive", "seminaive", "magic"):
        answer = answer_query(program, db, query, method=method)
        firings[method] = answer.stats.rule_firings
        rows.append(
            [
                method,
                answer.stats.facts_derived,
                answer.stats.rule_firings,
                answer.stats.duplicate_derivations,
            ]
        )
    # semi-naive fires each derivation once; naive re-fires every round
    assert firings["seminaive"] < firings["naive"]
    print_table(
        f"engine ablation: ancestor on chain {size}",
        ["strategy", "facts", "firings", "duplicates"],
        rows,
    )
    benchmark(lambda: bottom_up_answer(program, db, query))


def test_qsq_vs_magic_same_work_shape(benchmark):
    """QSQ (tuple-at-a-time top-down) and magic (set-at-a-time bottom-up)
    implement the same sips: their answers coincide, and magic's derived
    facts equal QSQ's queries+answers (Theorem 9.1, timed here)."""
    from repro import adorn_program, qsq_evaluate, rewrite
    from repro.datalog.engine import evaluate

    program = ancestor_program()
    query = ancestor_query("n0")
    db = chain_database(60)

    adorned = adorn_program(program, query)
    rewritten = rewrite(program, query, method="magic", adorned=adorned)

    def run_qsq():
        return qsq_evaluate(adorned.program, db, adorned.query_literal)

    qsq = benchmark(run_qsq)
    magic_result = evaluate(
        rewritten.program, rewritten.seeded_database(db)
    )
    magic_facts = magic_result.database.tuples("anc^bf")
    assert magic_facts == qsq.answers["anc^bf"]
    magic_queries = magic_result.database.tuples("magic_anc_bf")
    assert magic_queries == qsq.queries["anc^bf"]
