"""Guardrail overhead and responsiveness: the cost of governed evaluation.

Not a paper artifact: resource governance (repro.core.limits) exists so
the ROADMAP's serving and parallelism items can assume bounded,
abortable evaluation.  This bench holds the two lines that make that
assumption safe to build on:

* **overhead**: threading a generous, never-tripping
  :class:`~repro.core.limits.EvaluationBudget` through the fixpoint
  loops costs <= 3% wall-clock (plus a small absolute epsilon for timer
  noise) on the depth-100 workloads of ``bench_join_planning`` --
  governed and ungoverned runs are interleaved and both take their
  best-of-N, so scheduler noise hits both sides alike;
* **responsiveness**: a wall-clock deadline on a non-terminating
  program aborts within about one fixpoint round of the deadline, not
  whole seconds later.

``BENCH_TIMING_STRICT=0`` disarms both wall-clock gates on noisy shared
runners; the answer-equality assertions always run.
"""

import gc
import os
import time

import pytest

from repro import (
    BudgetExceeded,
    EvaluationBudget,
    Literal,
    Program,
    Variable,
    evaluate_seminaive,
)
from repro.datalog.ast import Rule
from repro.datalog.terms import Constant, Struct
from repro.workloads import (
    ancestor_program,
    chain_database,
    nonlinear_samegen_program,
    samegen_database,
)

from conftest import print_table, record_bench

TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
MAX_OVERHEAD = 0.03  # the tentpole's gate: <= 3% on depth-100 workloads
EPSILON_S = 0.002  # absolute slack so sub-10ms runs don't gate on jitter
REPS = 7

# a budget with every limit armed but none remotely reachable: the
# governed run pays the full per-round/per-batch check sequence
GENEROUS = EvaluationBudget(
    timeout=300.0,
    max_facts=10**9,
    max_tuples_scanned=10**12,
    max_memory_bytes=1 << 40,
)


def _interleaved_best(program, db, reps=REPS):
    """Best-of-N for the ungoverned and governed runs, interleaved so
    both sides sample the same machine conditions."""
    evaluate_seminaive(program, db)  # warm-up: interning, plan cache
    evaluate_seminaive(program, db, meter=GENEROUS.start())
    gc.collect()  # keep a prior bench's garbage off either side's tab
    plain_best = governed_best = float("inf")
    plain = governed = None
    for _ in range(reps):
        t0 = time.perf_counter()
        plain = evaluate_seminaive(program, db)
        plain_best = min(plain_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        governed = evaluate_seminaive(program, db, meter=GENEROUS.start())
        governed_best = min(governed_best, time.perf_counter() - t0)
    return plain, governed, plain_best, governed_best


def _report_overhead(title, pred_key, plain, governed, plain_s, governed_s,
                     remeasure=None):
    overhead = governed_s / plain_s - 1.0 if plain_s > 0 else 0.0
    if (
        TIMING_STRICT
        and remeasure is not None
        and governed_s > plain_s * (1.0 + MAX_OVERHEAD) + EPSILON_S
    ):
        # a loaded machine can hand one side an unlucky best-of-N even
        # interleaved; one full re-measure before failing the gate
        plain2, governed2, plain2_s, governed2_s = remeasure()
        plain_s, governed_s = min(plain_s, plain2_s), min(
            governed_s, governed2_s
        )
        plain, governed = plain2, governed2
        overhead = governed_s / plain_s - 1.0 if plain_s > 0 else 0.0
    print_table(
        title,
        ["path", "facts", "seconds"],
        [
            ["ungoverned", plain.stats.facts_derived, f"{plain_s:.4f}"],
            ["governed", governed.stats.facts_derived, f"{governed_s:.4f}"],
            ["overhead", "", f"{overhead * 100:+.1f}%"],
        ],
    )
    record_bench(
        {
            "workload": title,
            "ungoverned_s": plain_s,
            "governed_s": governed_s,
            "overhead_fraction": overhead,
            "facts": governed.stats.facts_derived,
        }
    )
    # governance must be invisible in the answers, always
    assert governed.database.tuples(pred_key) == plain.database.tuples(
        pred_key
    )
    if TIMING_STRICT:
        assert governed_s <= plain_s * (1.0 + MAX_OVERHEAD) + EPSILON_S, (
            f"governed evaluation {overhead * 100:.1f}% slower than "
            f"ungoverned on {title} (gate: {MAX_OVERHEAD * 100:.0f}% "
            f"+ {EPSILON_S * 1000:.0f}ms)"
        )


@pytest.mark.parametrize("depth", [100])
def test_governed_overhead_ancestor(depth):
    program = ancestor_program()
    db = chain_database(depth)
    plain, governed, plain_s, governed_s = _interleaved_best(program, db)
    _report_overhead(
        f"guardrail overhead: ancestor on chain {depth}",
        "anc", plain, governed, plain_s, governed_s,
        remeasure=lambda: _interleaved_best(program, db),
    )


@pytest.mark.parametrize("layers", [100])
def test_governed_overhead_samegen(layers):
    program = nonlinear_samegen_program()
    db = samegen_database(layers=layers, width=3, flat_edges=2)
    plain, governed, plain_s, governed_s = _interleaved_best(program, db)
    _report_overhead(
        f"guardrail overhead: same-generation, {layers} layers",
        "sg", plain, governed, plain_s, governed_s,
        remeasure=lambda: _interleaved_best(program, db),
    )


def test_timeout_responsiveness():
    """A deadline on a non-terminating program must abort within about
    one fixpoint round of the deadline.

    grow(s(X)) :- grow(X) supplies the infinite axis; the work rule is
    per-round ballast -- each round's fresh grow fact re-joins the dense
    ``e`` relation, keeping rounds at ms scale so the trip point is
    measurable and term nesting stays shallow."""
    x, y, z, w = (Variable(n) for n in "XYZW")
    program = Program(
        (
            Rule(
                Literal("grow", (Struct("s", (x,)),)),
                (Literal("grow", (x,)),),
            ),
            Rule(
                Literal("work", (x, z)),
                (
                    Literal("grow", (w,)),
                    Literal("e", (x, y)),
                    Literal("e", (y, z)),
                ),
            ),
        )
    )
    from repro import Database

    db = Database()
    db.add_fact(Literal("grow", (Constant("zero"),)))
    db.add_values(
        "e", [(f"n{i}", f"n{j}") for i in range(30) for j in range(30)]
    )
    deadline = 0.25
    meter = EvaluationBudget(timeout=deadline).start()
    t0 = time.perf_counter()
    with pytest.raises(BudgetExceeded) as info:
        evaluate_seminaive(program, db, meter=meter)
    elapsed = time.perf_counter() - t0
    overshoot = elapsed - deadline
    rounds = info.value.iterations or 0
    per_round = elapsed / rounds if rounds else 0.0
    print_table(
        "guardrail responsiveness: deadline on a non-terminating program",
        ["deadline_s", "elapsed_s", "overshoot_s", "rounds", "s_per_round"],
        [[deadline, f"{elapsed:.4f}", f"{overshoot:.4f}", rounds,
          f"{per_round:.6f}"]],
    )
    record_bench(
        {
            "workload": "timeout responsiveness (growing program)",
            "deadline_s": deadline,
            "elapsed_s": elapsed,
            "overshoot_s": overshoot,
            "rounds": rounds,
            "s_per_round": per_round,
        }
    )
    assert info.value.limit == "wall_clock"
    assert elapsed >= deadline
    if TIMING_STRICT:
        # "within ~1 round of the deadline", with floor slack for the
        # degenerate case where rounds are microseconds
        assert overshoot <= max(5 * per_round, 0.05), (
            f"deadline overshot by {overshoot:.3f}s "
            f"({per_round:.6f}s/round)"
        )
