"""E4 -- Appendix A.5: regenerate the GC rewrites and their
semijoin-optimized forms; statically flag nonlinear ancestor
(A.5.2: "the counting strategy does not terminate in this example").
"""

import pytest

from repro import (
    adorn_program,
    counting_safety,
    rewrite,
    semijoin_optimize,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import canonical_rules, print_table

EXPECTED_PLAIN = {
    "ancestor": [
        "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), par(D, E).",
        "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), par(D, F), "
        "anc_ix_bf(A+1, 2*B+2, 2*C+2, F, E).",
        "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- cnt_anc_bf(A, B, C, E), "
        "par(E, D).",
    ],
    "nonlinear_samegen": [
        "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- cnt_sg_bf(A, B, C, E), up(E, D).",
        "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- cnt_sg_bf(A, B, C, E), "
        "up(E, F), sg_ix_bf(A+1, 2*B+2, 5*C+2, F, G), flat(G, D).",
        "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), flat(D, E).",
        "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), up(D, F), "
        "sg_ix_bf(A+1, 2*B+2, 5*C+2, F, G), flat(G, H), "
        "sg_ix_bf(A+1, 2*B+2, 5*C+4, H, I), down(I, E).",
    ],
}

EXPECTED_SEMIJOIN = {
    "ancestor": [
        "anc_ix_bf(A, B, C, D) :- anc_ix_bf(A+1, 2*B+2, 2*C+2, D).",
        "anc_ix_bf(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
        "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- cnt_anc_bf(A, B, C, E), "
        "par(E, D).",
    ],
    "nonlinear_samegen": [
        "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- cnt_sg_bf(A, B, C, E), up(E, D).",
        "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- "
        "sg_ix_bf(A+1, 2*B+2, 5*C+2, E), flat(E, D).",
        "sg_ix_bf(A, B, C, D) :- cnt_sg_bf(A, B, C, E), flat(E, D).",
        "sg_ix_bf(A, B, C, D) :- sg_ix_bf(A+1, 2*B+2, 5*C+4, E), down(E, D).",
    ],
}

CASES = {
    "ancestor": (ancestor_program, lambda: ancestor_query("john")),
    "nonlinear_samegen": (
        nonlinear_samegen_program,
        lambda: samegen_query("john"),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_gc_rewrite_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    rewritten = benchmark(lambda: rewrite(program, query, method="counting"))
    assert canonical_rules(rewritten) == sorted(EXPECTED_PLAIN[name])


@pytest.mark.parametrize("name", sorted(CASES))
def test_gc_semijoin_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    plain = rewrite(program, query, method="counting")
    optimized = benchmark(lambda: semijoin_optimize(plain))
    assert canonical_rules(optimized) == sorted(EXPECTED_SEMIJOIN[name])
    print_table(
        f"A.5 GC + semijoin: {name}",
        ["rule"],
        [[rule] for rule in canonical_rules(optimized)],
    )


def test_gc_rewrites_the_remaining_appendix_problems(benchmark):
    """Nested same-generation and list reverse also rewrite cleanly."""

    def run():
        out = {}
        out["nested"] = rewrite(
            nested_samegen_program(),
            nested_samegen_query("john"),
            method="counting",
        )
        out["reverse"] = rewrite(
            list_reverse_program(),
            reverse_query(integer_list(2)),
            method="counting",
        )
        return out

    results = benchmark(run)
    assert len(results["nested"].rules) == 7
    assert len(results["reverse"].rules) == 7


def test_nonlinear_ancestor_flagged_nonterminating(benchmark):
    """A.5.2: counting does not terminate; Theorem 10.3 certifies it
    statically (cyclic reachable argument graph)."""
    adorned = adorn_program(
        nonlinear_ancestor_program(), ancestor_query("john")
    )
    report = benchmark(lambda: counting_safety(adorned))
    assert report.safe is False
    assert report.theorem == "10.3"
    print_table(
        "A.5.2 verdict",
        ["program", "safe", "theorem"],
        [["nonlinear ancestor + counting", report.safe, report.theorem]],
    )
