"""E2 -- Appendix A.3: regenerate the four GMS rewrites.

Times the generalized magic-sets rewrite and asserts the outputs equal
the paper's rule sets (canonical comparison, as in the tests).
"""

import pytest

from repro import rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    reverse_query,
)

from conftest import canonical_rules, print_table

EXPECTED = {
    "ancestor": [
        "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
        "anc^bf(A, B) :- magic_anc_bf(A), par(A, C), anc^bf(C, B).",
        "magic_anc_bf(A) :- magic_anc_bf(B), par(B, A).",
    ],
    "nonlinear_ancestor": [
        "anc^bf(A, B) :- magic_anc_bf(A), anc^bf(A, C), anc^bf(C, B).",
        "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
        "magic_anc_bf(A) :- magic_anc_bf(B), anc^bf(B, A).",
    ],
    "nested_samegen": [
        "magic_p_bf(A) :- magic_p_bf(B), sg^bf(B, A).",
        "magic_sg_bf(A) :- magic_p_bf(A).",
        "magic_sg_bf(A) :- magic_sg_bf(B), up(B, A).",
        "p^bf(A, B) :- magic_p_bf(A), b1(A, B).",
        "p^bf(A, B) :- magic_p_bf(A), sg^bf(A, C), p^bf(C, D), b2(D, B).",
        "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
        "sg^bf(A, B) :- magic_sg_bf(A), up(A, C), sg^bf(C, D), down(D, B).",
    ],
    "list_reverse": [
        "append^bbf(A, [B | C], [B | D]) :- magic_append_bbf(A, [B | C]), "
        "append^bbf(A, C, D).",
        "append^bbf(A, [], [A]) :- magic_append_bbf(A, []).",
        "magic_append_bbf(A, B) :- magic_append_bbf(A, [C | B]).",
        "magic_append_bbf(A, B) :- magic_reverse_bf([A | C]), reverse^bf(C, B).",
        "magic_reverse_bf(A) :- magic_reverse_bf([B | A]).",
        "reverse^bf([A | B], C) :- magic_reverse_bf([A | B]), "
        "reverse^bf(B, D), append^bbf(A, D, C).",
        "reverse^bf([], []) :- magic_reverse_bf([]).",
    ],
}

CASES = {
    "ancestor": (ancestor_program, lambda: ancestor_query("john")),
    "nonlinear_ancestor": (
        nonlinear_ancestor_program,
        lambda: ancestor_query("john"),
    ),
    "nested_samegen": (
        nested_samegen_program,
        lambda: nested_samegen_query("john"),
    ),
    "list_reverse": (
        list_reverse_program,
        lambda: reverse_query(integer_list(2)),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_gms_rewrite_matches_paper(benchmark, name):
    program_maker, query_maker = CASES[name]
    program, query = program_maker(), query_maker()
    rewritten = benchmark(lambda: rewrite(program, query, method="magic"))
    assert canonical_rules(rewritten) == sorted(EXPECTED[name])
    print_table(
        f"A.3 GMS rewrite: {name}",
        ["rule"],
        [[rule] for rule in canonical_rules(rewritten)],
    )
