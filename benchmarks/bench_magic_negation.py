"""Magic sets under stratified negation: query-directed BOM queries.

PR 5 extended the magic/supplementary rewrites to stratified programs
(conservative Balbin/Kemp-style treatment: bindings never cross a
negation, negated cones are computed completely).  This bench pins down
the payoff on the BOM-with-exceptions family: a selective point query
``clean(part, S)?`` ("which sub-components of this one part are
usable?") only needs the part's own explosion, so the rewrite descends
one subtree while full bottom-up explodes every part.

Grid: point queries at tree levels 2 and 3, supplementary-magic vs the
compiled semi-naive baseline, answers checked against the stratum-wise
naive oracle (legacy join, no planner).  The gate is on *tuples
scanned* -- deterministic work, not wall clock -- and arms at
depth >= 9: the rewrite must scan at least 2x fewer tuples than full
bottom-up on every point query in the grid.

An all-free ``buildable(P)?`` and a fully-bound ``buildable(part)?``
are measured too, without a gate: ``buildable``'s negated cone
(``blocked`` over ``clean`` over ``component``) IS the full workload,
so the conservative rewrite cannot skip work there and honestly pays
its magic overhead -- the recorded numbers document that boundary
rather than hide it.

``MAGIC_NEG_DEPTH`` / ``MAGIC_NEG_FANOUT`` / ``MAGIC_NEG_RATE`` /
``MAGIC_NEG_SEED`` scale the part tree (CI smoke shrinks the depth
below the gate threshold).
"""

import os
import time

from repro import Session, parse_query
from repro.workloads import bom_database, bom_program

from conftest import print_table, record_bench

DEPTH = int(os.environ.get("MAGIC_NEG_DEPTH", "9"))
FANOUT = int(os.environ.get("MAGIC_NEG_FANOUT", "2"))
RATE = float(os.environ.get("MAGIC_NEG_RATE", "0.08"))
SEED = int(os.environ.get("MAGIC_NEG_SEED", "0"))
MIN_SCAN_RATIO = 2.0


def _child(index, k=0, fanout=FANOUT):
    return fanout * index + 1 + k


def point_query_roots():
    """Heap indexes of the grid's query roots (tree levels 2 and 3)."""
    level2 = _child(_child(0))
    level3 = _child(level2)
    return (f"p{level2}", f"p{level3}")


def run(database, query, method, use_planner=True):
    """One cold evaluation on a fresh session (no memo interference)."""
    session = Session(program=bom_program(), database=database)
    start = time.perf_counter()
    result = session.query(
        query, method=method, use_planner=use_planner
    )
    return result, time.perf_counter() - start


def test_point_queries_scan_less(benchmark):
    """Selective clean(part, S)? point queries: >= 2x fewer scans."""
    database = bom_database(DEPTH, FANOUT, RATE, SEED)
    rows = []
    gate_armed = DEPTH >= 9
    for root in point_query_roots():
        query = parse_query(f"clean({root}, S)?")
        magic, magic_s = run(database, query, "supplementary_magic")
        base, base_s = run(database, query, "seminaive")
        oracle, _ = run(database, query, "naive", use_planner=False)
        assert magic.rows == oracle.rows, f"magic wrong on {query}"
        assert base.rows == oracle.rows, f"baseline wrong on {query}"
        # auto must route the stratified point query to the rewrite
        auto, _ = run(database, query, "auto")
        assert auto.method == "supplementary_magic"
        assert auto.rows == oracle.rows
        ratio = base.stats.tuples_scanned / max(
            magic.stats.tuples_scanned, 1
        )
        rows.append(
            [
                str(query),
                len(oracle.rows),
                magic.stats.tuples_scanned,
                base.stats.tuples_scanned,
                f"{ratio:.2f}",
                f"{magic_s:.3f}",
                f"{base_s:.3f}",
            ]
        )
        record_bench(
            {
                "workload": {
                    "family": "bom",
                    "depth": DEPTH,
                    "fanout": FANOUT,
                    "exception_rate": RATE,
                    "seed": SEED,
                },
                "query": str(query),
                "answers": len(oracle.rows),
                "tuples_scanned": {
                    "supplementary_magic": magic.stats.tuples_scanned,
                    "seminaive": base.stats.tuples_scanned,
                },
                "scan_ratio": round(ratio, 3),
                "wall_clock_seconds": {
                    "supplementary_magic": round(magic_s, 6),
                    "seminaive": round(base_s, 6),
                },
            }
        )
        if gate_armed:
            assert ratio >= MIN_SCAN_RATIO, (
                f"supplementary magic scanned only {ratio:.2f}x fewer "
                f"tuples than full bottom-up on {query} at depth "
                f"{DEPTH} (gate: >= {MIN_SCAN_RATIO}x)"
            )
    print_table(
        f"magic under negation: depth={DEPTH} fanout={FANOUT} "
        f"rate={RATE} seed={SEED}",
        ["query", "answers", "magic scans", "seminaive scans",
         "ratio", "magic s", "seminaive s"],
        rows,
    )
    query = parse_query(f"clean({point_query_roots()[0]}, S)?")
    benchmark(
        lambda: run(database, query, "supplementary_magic")
    )


def test_buildable_queries_agree_without_gate(benchmark):
    """buildable queries: correct through the rewrite, no scan gate.

    ``buildable``'s negated cone is the whole workload (``blocked``
    needs every part's ``clean`` view), so the conservative rewrite
    computes at least as much as bottom-up here; the point of the grid
    row is exact agreement plus an honest record of the overhead.
    """
    database = bom_database(DEPTH, FANOUT, RATE, SEED)
    rows = []
    point = point_query_roots()[0]
    for text in ("buildable(P)?", f"buildable({point})?"):
        query = parse_query(text)
        magic, magic_s = run(database, query, "supplementary_magic")
        oracle, _ = run(database, query, "naive", use_planner=False)
        base, base_s = run(database, query, "seminaive")
        assert magic.rows == oracle.rows
        assert base.rows == oracle.rows
        rows.append(
            [
                text,
                len(oracle.rows),
                magic.stats.tuples_scanned,
                base.stats.tuples_scanned,
                f"{magic_s:.3f}",
                f"{base_s:.3f}",
            ]
        )
        record_bench(
            {
                "query": text,
                "answers": len(oracle.rows),
                "tuples_scanned": {
                    "supplementary_magic": magic.stats.tuples_scanned,
                    "seminaive": base.stats.tuples_scanned,
                },
            }
        )
    print_table(
        f"buildable through the conservative rewrite: depth={DEPTH}",
        ["query", "answers", "magic scans", "seminaive scans",
         "magic s", "seminaive s"],
        rows,
    )
    query = parse_query(f"buildable({point})?")
    benchmark(lambda: run(database, query, "seminaive"))
