"""Cross-evaluation answer memoization: cold evaluation vs memo hits.

The Session memo (``repro.session``) serves a repeated identical query
on an unchanged database from a dictionary keyed by
``(query, options, database version)`` -- no adornment, no rewrite, no
fixpoint.  This bench records the resulting wall-clock gap and the
hit/miss/invalidation counters, and asserts the headline claims:

* a warm (memoized) query is >= 100x faster than the cold evaluation
  on a deep-enough workload (the gate arms at depth >= 100 and can be
  disarmed with ``BENCH_TIMING_STRICT=0`` for noisy CI runners);
* every mutation invalidates: after an assert/retract the next query
  pays evaluation again, and returns the updated answers;
* the memo is per (query, options) entry: different methods memoize
  independently and all hit on repeat.

``MEMO_BENCH_DEPTH`` shrinks the workload for CI smoke runs.
"""

import os
import time

from repro import Session
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    bom_source,
    chain_database,
)

from conftest import print_table, record_bench

DEPTH = int(os.environ.get("MEMO_BENCH_DEPTH", "300"))
WARM_REPEATS = 50

#: the >=100x cold/warm gate only arms on real workloads and strict runs
TIMING_STRICT = os.environ.get("BENCH_TIMING_STRICT", "1") != "0"
GATE_ARMED = TIMING_STRICT and DEPTH >= 100


def _timed(thunk):
    t0 = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - t0


def test_memo_hit_vs_cold_evaluation(benchmark):
    session = Session(
        program=ancestor_program(), database=chain_database(DEPTH)
    )
    query = ancestor_query("n0")

    cold, cold_seconds = _timed(lambda: session.query(query))
    assert not cold.from_memo
    assert session.memo_misses == 1 and session.memo_hits == 0

    warm_seconds = []
    for _ in range(WARM_REPEATS):
        warm, seconds = _timed(lambda: session.query(query))
        assert warm.from_memo
        assert warm.rows == cold.rows
        warm_seconds.append(seconds)
    assert session.memo_hits == WARM_REPEATS
    assert session.memo_misses == 1

    warm_avg = sum(warm_seconds) / len(warm_seconds)
    ratio = cold_seconds / warm_avg if warm_avg else float("inf")
    print_table(
        f"memoization: ancestor chain depth {DEPTH}, "
        f"{WARM_REPEATS} warm repeats",
        ["phase", "seconds", "speedup"],
        [
            ["cold (evaluate)", f"{cold_seconds:.6f}", "1x"],
            ["warm avg (memo hit)", f"{warm_avg:.8f}", f"{ratio:.0f}x"],
            ["warm max", f"{max(warm_seconds):.8f}", "-"],
        ],
    )
    record_bench(
        {
            "workload": "ancestor_chain",
            "depth": DEPTH,
            "warm_repeats": WARM_REPEATS,
            "cold_seconds": round(cold_seconds, 6),
            "warm_avg_seconds": round(warm_avg, 9),
            "cold_over_warm": round(ratio, 1),
            "memo_hits": session.memo_hits,
            "memo_misses": session.memo_misses,
            "gate_armed": GATE_ARMED,
        }
    )
    if GATE_ARMED:
        assert ratio >= 100, (
            f"memo hit should be >=100x faster than cold evaluation, "
            f"got {ratio:.0f}x (cold={cold_seconds:.6f}s, "
            f"warm={warm_avg:.8f}s)"
        )
    benchmark(lambda: session.query(query))


def test_mutation_invalidates_then_rememoizes(benchmark):
    session = Session(
        program=ancestor_program(), database=chain_database(DEPTH)
    )
    query = ancestor_query("n0")

    first, cold_seconds = _timed(lambda: session.query(query))
    session.assert_("par", f"n{DEPTH}", "tail")
    after_add, invalidated_seconds = _timed(lambda: session.query(query))
    assert not after_add.from_memo, "mutation must drop the memo"
    assert session.memo_invalidations >= 1
    assert len(after_add.rows) == len(first.rows) + 1

    hit, hit_seconds = _timed(lambda: session.query(query))
    assert hit.from_memo

    session.retract("par", f"n{DEPTH}", "tail")
    after_retract, _ = _timed(lambda: session.query(query))
    assert not after_retract.from_memo
    assert after_retract.rows == first.rows

    print_table(
        f"invalidation: ancestor chain depth {DEPTH}",
        ["phase", "from_memo", "seconds"],
        [
            ["cold", first.from_memo, f"{cold_seconds:.6f}"],
            ["after add", after_add.from_memo, f"{invalidated_seconds:.6f}"],
            ["repeat", hit.from_memo, f"{hit_seconds:.8f}"],
            ["after retract", after_retract.from_memo, "-"],
        ],
    )
    record_bench(
        {
            "workload": "ancestor_chain_mutation",
            "depth": DEPTH,
            "cold_seconds": round(cold_seconds, 6),
            "post_mutation_seconds": round(invalidated_seconds, 6),
            "memo_hit_seconds": round(hit_seconds, 9),
            "memo_invalidations": session.memo_invalidations,
        }
    )
    benchmark(lambda: session.query(query))


def test_memo_is_per_method_and_all_hit(benchmark):
    session = Session(
        program=ancestor_program(),
        database=chain_database(max(20, DEPTH // 10)),
    )
    query = ancestor_query("n0")
    methods = ("auto", "supplementary_magic", "magic", "qsq", "seminaive")

    rows = []
    baseline = None
    for method in methods:
        result, cold = _timed(lambda: session.query(query, method=method))
        assert not result.from_memo
        repeat, warm = _timed(lambda: session.query(query, method=method))
        assert repeat.from_memo
        if baseline is None:
            baseline = result.rows
        assert result.rows == baseline
        rows.append([method, f"{cold:.6f}", f"{warm:.8f}"])
    assert session.memo_misses == len(methods)
    assert session.memo_hits == len(methods)
    print_table(
        "memoization is per (query, method) entry",
        ["method", "cold s", "memo-hit s"],
        rows,
    )
    benchmark(lambda: session.query(query, method="auto"))


def test_memo_on_stratified_workload(benchmark):
    """The memo sits above dispatch: stratified (negation) programs
    memoize exactly like positive ones."""
    session = Session(
        bom_source(depth=6, fanout=2, exception_rate=0.15, seed=7)
    )
    cold, cold_seconds = _timed(lambda: session.query())
    # auto rewrites stratified programs too (conservative magic)
    assert cold.method == "supplementary_magic"
    warm, warm_seconds = _timed(lambda: session.query())
    assert warm.from_memo and warm.rows == cold.rows
    record_bench(
        {
            "workload": "bom_stratified",
            "cold_seconds": round(cold_seconds, 6),
            "memo_hit_seconds": round(warm_seconds, 9),
            "answers": len(cold.rows),
        }
    )
    benchmark(lambda: session.query())
