"""Incremental sessions: a BOM recall desk served from one Session.

Scenario: a parts desk answers "is this product still buildable?"
queries all day while the bill of materials changes underneath it --
parts get recalled (retracted), replacements arrive (asserted).  The
program uses stratified negation (exception lists); ``auto`` dispatch
runs the conservative supplementary-magic rewrite for it, same as for
the positive closure queries.

What this shows:

* one long-lived :class:`repro.Session` serving many queries;
* repeated identical queries are O(1) memo hits until a mutation bumps
  the database version and drops them;
* assertion *and retraction* between queries, with correct answers
  after each;
* the ``counters()`` summary: memo hits/misses/invalidations, shared
  plan-cache traffic, database version.

Run::

    python examples/session_incremental.py
"""

from repro import Session


def main() -> None:
    session = Session(
        """
        % transitive subparts
        comp(P, Q) :- sub(P, Q).
        comp(P, Q) :- sub(P, R), comp(R, Q).
        % a part is tainted when a recalled part occurs in its closure
        tainted(P) :- comp(P, Q), recalled(Q).
        % buildable: a known part that is not tainted
        buildable(P) :- part(P), not tainted(P).

        part(drone). part(frame). part(motor). part(cell).
        sub(drone, frame). sub(drone, motor). sub(motor, cell).
        """
    )

    query = "buildable(P)?"
    first = session.query(query)
    # stratified negation no longer forces the bottom-up fallback: the
    # conservative magic extension carries the anti-joins along
    assert first.method == "supplementary_magic"
    print("auto-dispatched method :", first.method, "(program negates)")
    print("buildable              :", sorted(v[0] for v in first.values()))

    again = session.query(query)
    print("asked again            : from_memo =", again.from_memo)
    assert again.from_memo

    # a recall arrives: the cell is bad.  Everything containing it taints.
    session.assert_("recalled(cell)")
    after_recall = session.query(query)
    print()
    print("recall(cell) asserted  : version =", session.version)
    print("buildable              :", sorted(v[0] for v in after_recall.values()))
    # drone and motor contain the cell; the cell itself is not tainted
    # (tainted needs a *proper* subpart recalled), the frame never was
    assert sorted(v[0] for v in after_recall.values()) == ["cell", "frame"]

    # the recall is lifted: retract the fact, answers recover
    session.retract("recalled(cell)")
    lifted = session.query(query)
    print()
    print("recall lifted          : version =", session.version)
    print("buildable              :", sorted(v[0] for v in lifted.values()))
    assert lifted.rows == first.rows

    # a selective closure query on the same session: the rewrite only
    # explodes the queried part's subtree
    closure = session.query("comp(drone, Q)?")
    print()
    print("comp(drone, Q) via     :", closure.method)
    print("subparts of drone      :", sorted(v[0] for v in closure.values()))

    # materialize the buildable view: evaluated once, then *maintained*
    # by delta propagation -- each recall/replacement below costs work
    # proportional to its change, not a re-evaluation
    view = session.materialize(query)
    with session.batch():  # one maintenance pass for both mutations
        session.assert_("part", "spare_motor")
        session.assert_("sub", "drone", "spare_motor")
    served = session.query(query)
    print()
    print("materialized view      : maintained =", served.maintained)
    print("buildable              :", sorted(v[0] for v in served.values()))
    assert served.maintained and ("spare_motor",) in served.values()
    session.retract("part", "spare_motor")
    assert ("spare_motor",) not in view.rows.values()
    view.drop()

    print()
    print("session counters       :", session.counters())


if __name__ == "__main__":
    main()
