"""Quickstart: the paper's opening example through the Session API.

The ancestor program asks for the ancestors of ``john``.  Plain
bottom-up evaluation computes the *entire* ancestor relation and then
selects; the magic-sets rewrite restricts the computation to facts
relevant to the query (Section 1 of the paper).  A
:class:`repro.Session` picks the rewrite automatically
(``method="auto"``) and memoizes answers across evaluations.

Run::

    python examples/quickstart.py
"""

from repro import Session


def main() -> None:
    session = Session(
        """
        % the ancestor program (Section 1)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        """
    )

    # a small genealogy: john's line plus an unrelated clan; a batch
    # coalesces the asserts into one version step for any live views
    with session.batch():
        for parent, child in [
            ("john", "mary"),
            ("mary", "sue"),
            ("mary", "tom"),
            ("sue", "ann"),
            # the unrelated clan -- bottom-up computes their ancestors
            # too, magic does not
            ("zeus", "ares"),
            ("zeus", "athena"),
            ("ares", "eros"),
            ("athena", "erichthonius"),
        ]:
            session.assert_("par", parent, child)

    print("query: anc(john, Y)?")
    print()

    # 1. the strawman: evaluate everything bottom-up, then select
    naive = session.query("anc(john, Y)?", method="naive")
    print("naive bottom-up answers :", sorted(naive.values()))
    print("  facts derived         :", naive.stats.facts_derived)

    # 2. auto dispatch: the session picks the magic-family rewrite
    auto = session.query("anc(john, Y)?")
    print()
    print("auto-dispatched method  :", auto.method)
    print("answers                 :", sorted(auto.values()))
    print("  facts derived         :", auto.stats.facts_derived)
    print(
        "  restriction           : magic computes only john's cone;"
        " zeus' clan is never touched"
    )
    assert auto.rows == naive.rows

    # 3. ask again: the answer comes from the cross-evaluation memo
    again = session.query("anc(john, Y)?")
    print()
    print("asked again             : from_memo =", again.from_memo)
    assert again.from_memo and again.rows == auto.rows

    # 4. a new fact invalidates the memo; the next query re-evaluates
    session.assert_("par(ann, zoe)")
    fresh = session.query("anc(john, Y)?")
    print("after assert_(par(ann, zoe)): from_memo =", fresh.from_memo)
    assert not fresh.from_memo
    assert ("zoe",) in fresh.values()


if __name__ == "__main__":
    main()
