"""Quickstart: the paper's opening example, end to end.

The ancestor program asks for the ancestors of ``john``.  Plain
bottom-up evaluation computes the *entire* ancestor relation and then
selects; the magic-sets rewrite restricts the computation to facts
relevant to the query (Section 1 of the paper).

Run::

    python examples/quickstart.py
"""

from repro import answer_query, bottom_up_answer, parse_program, parse_query, rewrite
from repro.datalog.database import Database


def main() -> None:
    source = """
        % the ancestor program (Section 1)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    """
    program, _, _ = parse_program(source)

    # a small genealogy: john's line plus an unrelated clan
    database = Database()
    database.add_values(
        "par",
        [
            ("john", "mary"),
            ("mary", "sue"),
            ("mary", "tom"),
            ("sue", "ann"),
            # the unrelated clan -- bottom-up computes their ancestors
            # too, magic does not
            ("zeus", "ares"),
            ("zeus", "athena"),
            ("ares", "eros"),
            ("athena", "erichthonius"),
        ],
    )

    query = parse_query("anc(john, Y)?")

    print("query:", query)
    print()

    # 1. the strawman: evaluate everything bottom-up, then select
    naive = bottom_up_answer(program, database, query, engine="naive")
    print("naive bottom-up answers :", sorted(naive.values()))
    print("  facts derived         :", naive.stats.facts_derived)

    # 2. the magic-sets rewrite
    rewritten = rewrite(program, query, method="magic")
    print()
    print("the generalized magic-sets rewrite (Section 4):")
    for line in str(rewritten).splitlines():
        print("   ", line)

    magic = answer_query(program, database, query, method="magic")
    print()
    print("magic answers           :", sorted(magic.values()))
    print("  facts derived         :", magic.stats.facts_derived)
    print(
        "  restriction           : magic computes only john's cone;"
        " zeus' clan is never touched"
    )
    assert magic.answers == naive.answers


if __name__ == "__main__":
    main()
