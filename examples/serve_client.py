"""Serving queries: a TCP client against a live ``repro serve`` server.

Scenario: an ancestry service answers closure queries over TCP while
facts keep arriving.  The server pins every read to an immutable MVCC
snapshot version, so answers are consistent even while the writer is
publishing the next version.

What this shows:

* starting the server in-process (:class:`repro.server.ServerHandle`
  runs the same asyncio app that ``repro serve`` runs standalone);
* :class:`repro.server.ReproClient` -- connect, query, read stats;
* the serving modes: a first query evaluates cold, an identical
  re-query is a memo hit, and after ``--materialize`` a maintained
  view answers by pure selection;
* asserting facts through the server: the writer bumps the snapshot
  version, memoized answers for the old version stop matching, and a
  re-query sees the new facts.

Run::

    python examples/serve_client.py
"""

from repro.server import ReproClient, ServerHandle

PROGRAM = """
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).

par(ada, beth). par(beth, cora). par(cora, dina).
"""


def main() -> None:
    # One call boots the full server -- snapshot manager, reader pool,
    # single writer -- on a background thread and binds a loopback port.
    with ServerHandle.start(PROGRAM, materialize=["anc"]) as handle:
        host, port = handle.address
        print(f"server listening on {host}:{port}")

        with ReproClient(host, port) as client:
            pong = client.ping()
            print(f"ping: snapshot version {pong['version']}")

            # anc is materialized, so this is answered by selection
            # from the published view -- no evaluation at all.
            first = client.query("anc(ada, X)?")
            print(
                f"anc(ada, X) -> {first['rows']}  "
                f"(served={first['served']}, version={first['version']})"
            )
            assert first["row_count"] == 3

            # Force a cold evaluation, then repeat it: the repeat is a
            # memo hit keyed on (query, method, engine, version).
            cold = client.query("anc(beth, X)?", method="seminaive")
            again = client.query("anc(beth, X)?", method="seminaive")
            print(
                f"anc(beth, X) cold served={cold['served']}, "
                f"repeat served={again['served']}"
            )
            assert cold["served"] == "cold" and again["served"] == "memo"

            # Mutate through the server: the single writer applies the
            # batch, maintains the anc view incrementally, and
            # publishes the next snapshot version atomically.
            applied = client.assert_facts(["par(dina, edna)."])
            print(
                f"asserted 1 fact -> version {applied['version']}, "
                f"views republished: {applied['views_published']}"
            )

            # Same query text, new version: the old memo entry no
            # longer matches, and the fresh view already contains the
            # new descendant.
            after = client.query("anc(ada, X)?")
            print(
                f"anc(ada, X) -> {after['rows']}  "
                f"(served={after['served']}, version={after['version']})"
            )
            assert after["row_count"] == 4
            assert ["edna"] in after["rows"]
            assert after["version"] > first["version"]

            stats = client.stats()
            print(
                "stats: "
                f"{stats['queries']} queries, "
                f"{stats['cold_evaluations']} cold, "
                f"{stats['memo_hits']} memo hits, "
                f"{stats['view_serves']} view serves, "
                f"{stats['snapshots_published']} versions published"
            )


if __name__ == "__main__":
    main()
