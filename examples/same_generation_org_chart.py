"""Same-generation queries over an organization chart.

Scenario: ``up(E, M)`` says M is E's manager; ``flat(A, B)`` says A and
B sit on the same cross-team committee; ``down`` mirrors ``up``.  Two
employees are "peers" when they are connected by climbing up the
management chain, moving across a committee, and descending the same
number of levels -- the paper's nonlinear same-generation program
(Example 1).

The script drives all four rewriting strategies plus the top-down
baseline through one :class:`repro.Session` and compares fact counts
and rule firings, illustrating the Section 11 discussion (GSMS trades
memory for fewer duplicate joins; counting adds indices that pay off
with the semijoin optimization).

Run::

    python examples/same_generation_org_chart.py
"""

from repro import Session
from repro.workloads import samegen_database


def main() -> None:
    # a 4-level org with 6 employees per level
    session = Session(
        """
        peer(X, Y) :- flat(X, Y).
        peer(X, Y) :- up(X, Z1), peer(Z1, Z2), flat(Z2, Z3),
                      peer(Z3, Z4), down(Z4, Y).
        """,
        database=samegen_database(layers=4, width=6, flat_edges=10, seed=11),
    )
    # node names start with an uppercase L, so quote them: unquoted they
    # would parse as variables
    query = 'peer("L0_0", Y)?'

    print("query:", query)
    baseline = session.query(query, method="seminaive")
    print(
        f"semi-naive baseline: {len(baseline.rows)} answers, "
        f"{baseline.stats.facts_derived} facts derived"
    )
    print()

    header = f"{'strategy':<26}{'answers':>8}{'facts':>8}{'firings':>9}{'probes':>9}"
    print(header)
    print("-" * len(header))
    for method in (
        "magic",
        "supplementary_magic",
        "counting",
        "supplementary_counting",
    ):
        answer = session.query(query, method=method, max_iterations=1000)
        assert answer.rows == baseline.rows
        stats = answer.stats
        print(
            f"{method:<26}{len(answer.rows):>8}"
            f"{stats.facts_derived:>8}{stats.rule_firings:>9}"
            f"{stats.join_probes:>9}"
        )
    qsq = session.query(query, method="qsq")
    assert qsq.rows == baseline.rows
    print(f"{'qsq (top-down)':<26}{len(qsq.rows):>8}{'-':>8}{'-':>9}{'-':>9}")

    print()
    print(
        "All strategies agree with the baseline.  Note the Section 11 "
        "trade-offs: supplementary magic stores extra (supplementary) "
        "facts to avoid re-joining prefixes (fewer firings than magic); "
        "the counting methods store even more facts -- one per "
        "derivation path -- which only pays off where the semijoin "
        "optimization applies and derivations are unique."
    )


if __name__ == "__main__":
    main()
