"""Bill-of-materials explosion: where the choice of sip matters.

Scenario: ``uses(P, Q)`` says product P directly incorporates part Q.
``needs(P, Q)`` is the transitive closure.  Two realistic queries:

* ``needs(widget9000, Q)?``  -- which parts does a product pull in?
  (binds the FIRST argument; the natural left-to-right sip fits)
* ``needs(P, chip_x)?``      -- which products are affected by a part
  recall?  (binds the SECOND argument; a left-to-right sip passes
  nothing, but a greedy, binding-maximizing order inverts the join)

The example shows adornments and rewrites under both orders, and the
fact-count gap between an order that exploits the binding and one that
does not -- the paper's point that the *sip* is a real degree of
freedom, independent of control (Sections 2 and 11).

Run::

    python examples/bill_of_materials.py
"""

from repro import answer_query, bottom_up_answer, parse_program, parse_query
from repro.core.sips import build_full_sip, greedy_order, sip_builder_with_order
from repro.workloads import load_edges, tree_edges


def show(title, answer):
    print(
        f"{title:<34} answers={len(answer.answers):>4}  "
        f"facts={answer.stats.facts_derived:>5}  "
        f"firings={answer.stats.rule_firings:>6}"
    )


def main() -> None:
    program, _, _ = parse_program(
        """
        needs(P, Q) :- uses(P, Q).
        needs(P, Q) :- uses(P, R), needs(R, Q).
        """
    )
    # a product tree: every assembly uses 3 sub-assemblies, 5 levels deep
    database = load_edges(tree_edges(5, fanout=3), relation="uses")

    forward = parse_query("needs(r, Q)?")
    print("== forward query (explode a product):", forward)
    baseline = bottom_up_answer(program, database, forward)
    show("semi-naive (whole closure)", baseline)
    magic = answer_query(program, database, forward, method="magic")
    assert magic.answers == baseline.answers
    show("magic, left-to-right sip", magic)
    print()

    recall = parse_query('needs(P, "r.0.0.0")?')
    print("== recall query (who uses this part?):", recall)
    baseline = bottom_up_answer(program, database, recall)
    show("semi-naive (whole closure)", baseline)

    # left-to-right sip: the binding on the SECOND argument cannot be
    # passed to `uses(P, R)` first, so the rewrite degenerates
    ltr = answer_query(program, database, recall, method="magic")
    assert ltr.answers == baseline.answers
    show("magic, left-to-right sip", ltr)

    # greedy order evaluates needs(R, Q) first (Q is bound), inverting
    # the traversal: only the recalled part's cone is explored
    greedy_builder = sip_builder_with_order(build_full_sip, greedy_order)
    inverted = answer_query(
        program, database, recall, method="magic", sip_builder=greedy_builder
    )
    assert inverted.answers == baseline.answers
    show("magic, greedy (inverted) sip", inverted)

    print()
    print(
        "The greedy sip turns the recall query into an upward walk from "
        "the recalled part; the left-to-right sip cannot use the binding "
        "and recomputes far more."
    )


if __name__ == "__main__":
    main()
