"""Bill-of-materials explosion: where the choice of sip matters.

Scenario: ``uses(P, Q)`` says product P directly incorporates part Q.
``needs(P, Q)`` is the transitive closure.  Two realistic queries:

* ``needs(widget9000, Q)?``  -- which parts does a product pull in?
  (binds the FIRST argument; the natural left-to-right sip fits)
* ``needs(P, chip_x)?``      -- which products are affected by a part
  recall?  (binds the SECOND argument; a left-to-right sip passes
  nothing, but a greedy, binding-maximizing order inverts the join)

A :class:`repro.Session` is configured with one sip family for all its
queries, so the comparison runs two sessions over the *same* database:
the default left-to-right session and a greedy-sip session.  The
fact-count gap between them is the paper's point that the *sip* is a
real degree of freedom, independent of control (Sections 2 and 11).

Run::

    python examples/bill_of_materials.py
"""

from repro import Session
from repro.core.sips import build_full_sip, greedy_order, sip_builder_with_order
from repro.workloads import load_edges, tree_edges


def show(title, result):
    print(
        f"{title:<34} answers={len(result.rows):>4}  "
        f"facts={result.stats.facts_derived:>5}  "
        f"firings={result.stats.rule_firings:>6}"
    )


PROGRAM = """
    needs(P, Q) :- uses(P, Q).
    needs(P, Q) :- uses(P, R), needs(R, Q).
"""


def main() -> None:
    # a product tree: every assembly uses 3 sub-assemblies, 5 levels deep
    database = load_edges(tree_edges(5, fanout=3), relation="uses")
    session = Session(PROGRAM, database=database)

    forward = "needs(r, Q)?"
    print("== forward query (explode a product):", forward)
    baseline = session.query(forward, method="seminaive")
    show("semi-naive (whole closure)", baseline)
    magic = session.query(forward, method="magic")
    assert magic.rows == baseline.rows
    show("magic, left-to-right sip", magic)
    print()

    recall = 'needs(P, "r.0.0.0")?'
    print("== recall query (who uses this part?):", recall)
    baseline = session.query(recall, method="seminaive")
    show("semi-naive (whole closure)", baseline)

    # left-to-right sip: the binding on the SECOND argument cannot be
    # passed to `uses(P, R)` first, so the rewrite degenerates
    ltr = session.query(recall, method="magic")
    assert ltr.rows == baseline.rows
    show("magic, left-to-right sip", ltr)

    # greedy order evaluates needs(R, Q) first (Q is bound), inverting
    # the traversal: only the recalled part's cone is explored.  The sip
    # family is session-level configuration, so this runs in a second
    # session over the same database.
    greedy = Session(
        PROGRAM,
        database=database,
        sip_builder=sip_builder_with_order(build_full_sip, greedy_order),
    )
    inverted = greedy.query(recall, method="magic")
    assert inverted.rows == baseline.rows
    show("magic, greedy (inverted) sip", inverted)

    print()
    print(
        "The greedy sip turns the recall query into an upward walk from "
        "the recalled part; the left-to-right sip cannot use the binding "
        "and recomputes far more."
    )


if __name__ == "__main__":
    main()
