"""List reverse: magic sets over function symbols (Appendix A.1(4)).

Plain bottom-up evaluation cannot run this program at all: the exit rule
``append(V, [], [V])`` is a non-ground unit rule, and the recursion
builds ever-larger lists.  The magic rewrite makes it terminate -- the
binding graph's cycles all have positive length (Theorem 10.1): every
recursive call strips one cons cell off the bound argument.

This example deliberately stays on the *legacy* module-level API
(``adorn_program`` / ``rewrite`` / ``answer_query``): those functions
are now thin shims over :class:`repro.Session` (see the other examples
for the session-first style), and this script keeps them exercised.

Run::

    python examples/list_reverse.py
"""

from repro import (
    EvaluationError,
    adorn_program,
    answer_query,
    counting_safety,
    evaluate,
    magic_safety,
    rewrite,
)
from repro.datalog.database import Database
from repro.workloads import constant_list, list_reverse_program, reverse_query


def main() -> None:
    program = list_reverse_program()
    print("the program (Appendix A.1, problem 4):")
    for rule in program.rules:
        print("   ", rule)
    print()

    query = reverse_query(constant_list(["a", "b", "c", "d"]))
    print("query:", query)
    print()

    # plain bottom-up fails: the program is not range-restricted
    try:
        evaluate(program, Database(), max_iterations=5)
    except EvaluationError as exc:
        print("plain bottom-up evaluation fails, as expected:")
        print("   ", type(exc).__name__, "-", str(exc)[:72], "...")
    print()

    # the safety analyses certify the magic rewrite (Section 10)
    adorned = adorn_program(program, query)
    for name, report in (
        ("magic   ", magic_safety(adorned)),
        ("counting", counting_safety(adorned)),
    ):
        print(
            f"safety[{name}]: safe={report.safe} "
            f"(Theorem {report.theorem})"
        )
    print()

    # the rewrite and its bottom-up evaluation
    rewritten = rewrite(program, query, method="supplementary_magic")
    print("the supplementary-magic rewrite:")
    for line in str(rewritten).splitlines():
        print("   ", line)
    print()

    for method in ("magic", "counting", "qsq"):
        answer = answer_query(
            program, Database(), query, method=method, max_iterations=300
        )
        value = next(iter(answer.answers))[0]
        print(f"{method:<10} reverse([a, b, c, d]) = {value}")


if __name__ == "__main__":
    main()
