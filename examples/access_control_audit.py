"""Access-control audit: recursive authorization with explanations.

Scenario: users are granted roles; roles inherit from other roles
(recursively); roles hold permissions on resources.  The question
"can alice read the ledger?" is a recursive query, and an *audit*
must justify every positive answer.

This combines two pieces of the library through one
:class:`repro.Session`:

* the magic rewrite (chosen explicitly here; ``method="auto"`` would
  pick the supplementary variant) restricts evaluation to alice's role
  cone, not the whole company's, and
* ``result.explain()`` prints the chain of grants behind each
  authorization (derivation trees, Section 1.1 of the paper);
* revoking a grant (:meth:`Session.retract`) invalidates the memoized
  answers, and the re-query reflects the revocation.

Run::

    python examples/access_control_audit.py
"""

from repro import Session


def main() -> None:
    session = Session(
        """
        % role reachability: a user holds a role directly or through
        % role inheritance
        holds(U, R) :- granted(U, R).
        holds(U, R) :- holds(U, S), inherits(S, R).
        % authorization: some held role carries the permission
        can(U, A, Res) :- holds(U, R), permits(R, A, Res).
        """
    )

    with session.batch():
        for user, role in [
            ("alice", "accountant"),
            ("bob", "intern"),
            ("carol", "cfo"),
        ]:
            session.assert_("granted", user, role)
        for role, sub in [
            ("cfo", "controller"),
            ("controller", "accountant"),
            ("accountant", "clerk"),
            ("intern", "visitor"),
        ]:
            session.assert_("inherits", role, sub)
        for role, action, resource in [
            ("clerk", "read", "ledger"),
            ("accountant", "write", "ledger"),
            ("controller", "approve", "payments"),
            ("visitor", "read", "lobby_screen"),
        ]:
            session.assert_("permits", role, action, resource)

    print("query: can(alice, A, Res)?")
    answer = session.query("can(alice, A, Res)?", method="magic")
    print("alice may:")
    for action, resource in sorted(answer.values()):
        print(f"   {action} {resource}")
    print()

    # audit: one proof tree per authorization, straight off the result
    print("audit trail:")
    for tree in answer.explain():
        print(tree.render(indent="   "))
        print()

    # the magic rewrite stays inside alice's cone: carol's cfo chain is
    # never explored
    magic_facts = answer.answer.evaluation.database.tuples("magic_holds_bf")
    explored = {str(row[0]) for row in magic_facts}
    print("users/roles explored by the magic rewrite:", sorted(explored))
    assert "carol" not in explored

    # revoke alice's grant: the memo drops, the re-query reflects it
    session.retract("granted(alice, accountant)")
    revoked = session.query("can(alice, A, Res)?", method="magic")
    print()
    print("after revoking accountant:", sorted(revoked.values()) or "nothing")
    assert not revoked.rows


if __name__ == "__main__":
    main()
