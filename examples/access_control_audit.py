"""Access-control audit: recursive authorization with explanations.

Scenario: users are granted roles; roles inherit from other roles
(recursively); roles hold permissions on resources.  The question
"can alice read the ledger?" is a recursive query, and an *audit*
must justify every positive answer.

This combines two pieces of the library:

* the magic rewrite restricts evaluation to alice's role cone (not the
  whole company's), and
* derivation trees (Section 1.1 of the paper; ``repro.datalog.derivation``)
  print the chain of grants behind each authorization.

Run::

    python examples/access_control_audit.py
"""

from repro import (
    Constant,
    Literal,
    answer_query,
    evaluate,
    explain,
    fact_stages,
    parse_program,
    parse_query,
)
from repro.datalog.database import Database


def main() -> None:
    program, _, _ = parse_program(
        """
        % role reachability: a user holds a role directly or through
        % role inheritance
        holds(U, R) :- granted(U, R).
        holds(U, R) :- holds(U, S), inherits(S, R).
        % authorization: some held role carries the permission
        can(U, A, Res) :- holds(U, R), permits(R, A, Res).
        """
    )

    database = Database()
    database.add_values(
        "granted",
        [
            ("alice", "accountant"),
            ("bob", "intern"),
            ("carol", "cfo"),
        ],
    )
    database.add_values(
        "inherits",
        [
            ("cfo", "controller"),
            ("controller", "accountant"),
            ("accountant", "clerk"),
            ("intern", "visitor"),
        ],
    )
    database.add_values(
        "permits",
        [
            ("clerk", "read", "ledger"),
            ("accountant", "write", "ledger"),
            ("controller", "approve", "payments"),
            ("visitor", "read", "lobby_screen"),
        ],
    )

    query = parse_query("can(alice, A, Res)?")
    print("query:", query)
    answer = answer_query(program, database, query, method="magic")
    print("alice may:")
    for action, resource in sorted(answer.values()):
        print(f"   {action} {resource}")
    print()

    # audit: derive the full model once, then explain each authorization
    result = evaluate(program, database)
    stages = fact_stages(program, database, result)
    print("audit trail:")
    for action, resource in sorted(answer.values()):
        fact = Literal(
            "can", (Constant("alice"), Constant(action), Constant(resource))
        )
        tree = explain(program, database, result, fact, _stages=stages)
        print(tree.render(indent="   "))
        print()

    # the magic rewrite stays inside alice's cone: carol's cfo chain is
    # never explored
    magic_facts = answer.evaluation.database.tuples("magic_holds_bf")
    explored = {str(row[0]) for row in magic_facts}
    print("users/roles explored by the magic rewrite:", sorted(explored))
    assert "carol" not in explored


if __name__ == "__main__":
    main()
